//! Runs every experiment at quick scale and writes one CSV of headline
//! metrics plus a full JSON report — the one-command regeneration entry
//! point (`results.csv` and `results/run_all.json` in the current
//! directory, or `out=<path>` / `json=<path>`).
//!
//! Experiments are independent (each builds its own `Machine`), so they
//! fan across `jobs=<N>` worker threads (default: every hardware
//! thread; `jobs=1` forces the old serial path). Results are gathered in
//! submission order, so the CSV and JSON outputs are byte-identical at
//! any job count — only the wall clock changes. Host-side wall-clock
//! timings land in `BENCH_run_all.json` (or `bench=<path>`): per
//! experiment, the serial sum, and the elapsed total, so the perf
//! trajectory is machine-readable PR over PR.
//!
//! The run is **crash-safe and self-healing**: every completed
//! experiment is appended (and fsync'd) to `results/journal.jsonl`
//! (`journal=<path>`) as it finishes, a panicking experiment is isolated
//! to a typed `Err` record while the rest of the grid completes, and
//! `watchdog_ms=<N>` arms a per-attempt watchdog with `max_retries=<K>`
//! retries before quarantine (the older `timeout_ms=`/`attempts=`
//! spellings still work). After a crash or `SIGKILL`, rerunning with
//! `--resume` replays the journal, reruns only what is missing or
//! failed, and emits byte-identical final CSV/JSON.
//!
//! The JSON report (schema `impulse-report-v1` per experiment) carries
//! what the CSV cannot: per-level latency histograms with p50/p90/p99
//! and the demand-cycle attribution table whose stage totals sum to each
//! epoch's demand-access cycles.
//!
//! `profile=1` turns on the host self-profiler for every experiment:
//! each job's thread measures its component spans (`mc.translate`,
//! `mc.gather`, `mc.prefetch`, `dram.access`) and the merged aggregates
//! land in the BENCH record, so "where does host time go" is answered
//! next to "how long did it take". Every run also appends one fsync'd
//! rollup line (`impulse-bench-history-v2`, with the git revision and
//! seed) to `BENCH_history.jsonl` (`history=<path>`) — the committed
//! PR-over-PR perf trajectory.
//!
//! `mode=replay` routes every experiment through the trace-driven
//! replay backend: each is executed once with the capture recorder
//! attached, round-tripped through the `impulse-replay-v1` codec, then
//! re-evaluated by the batched replay engine — and the replayed report
//! is asserted byte-identical to the executed one before it reaches any
//! artifact, so `results.csv` / `results/run_all.json` match
//! `mode=execute` exactly (locked by `tests/replay_equiv.rs`). The
//! BENCH record gains per-phase walls (`execute`, `codec`, `eval`) and
//! the headline `eval_speedup`; any experiment replay refuses (e.g.
//! fault schedules) falls back to its executed report and is marked
//! `replayed = false`.
//!
//! `tier=flat|cache` re-organises every experiment's memory system
//! under the given hybrid DRAM/SCM tier policy before it runs — the
//! grid's tier axis. The default catalog already carries dedicated
//! `tier/...` cells (the same workload across all three policies), so
//! plain runs chart the tier cost next to the paper tables; the
//! hybrid-tier cells always execute directly (`mode=replay` marks them
//! `replayed = false` with a typed reason rather than mis-time SCM
//! traffic).
//!
//! For the paper-layout tables with reference values, run the individual
//! binaries (`table1`, `table2`, `fig1`, ...). For flight-recorder
//! captures and heatmaps of this same catalog, run `trace record`.

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use impulse_bench::experiments::{
    catalog_entries, csv_from_outcomes, document_from_outcomes, report_artifacts, DEFAULT_SEED,
};
use impulse_bench::journal;
use impulse_bench::replay_mode;
use impulse_bench::runner::{self, CommonArgs, SharedJob};
use impulse_obs::{prof, Json};
use impulse_sim::{Machine, Report};

const USAGE: &str = "usage: run_all [mode=execute|replay] [out=results.csv] \
[json=results/run_all.json] [bench=BENCH_run_all.json] [history=BENCH_history.jsonl] \
[journal=results/journal.jsonl] [jobs=N] [seed=N] [tier=none|flat|cache] [profile=0|1] \
[watchdog_ms=N] [max_retries=K] [--resume]";

/// Per-experiment replay-backend phase walls and telemetry, collected
/// as jobs run (same lifecycle as the wall-clock timings vector).
struct ReplayPhases {
    name: String,
    execute_wall_ns: u64,
    codec_wall_ns: u64,
    eval_wall_ns: u64,
    raw_ops: u64,
    folded_ops: u64,
    fast_ops: u64,
    fallback_ops: u64,
    fast_forwarded: bool,
    replayed: bool,
    fallback_reason: Option<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |prefix: &str, default: &str| -> String {
        args.iter()
            .find_map(|a| a.strip_prefix(prefix).map(String::from))
            .unwrap_or_else(|| default.to_string())
    };
    let common = match CommonArgs::parse(&args, DEFAULT_SEED) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mode = common.mode.clone().unwrap_or_else(|| "execute".into());
    let replay = match mode.as_str() {
        "execute" => false,
        "replay" => true,
        other => {
            eprintln!("error: unknown mode `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let path = arg("out=", "results.csv");
    let json_path = arg("json=", "results/run_all.json");
    let bench_path = arg("bench=", "BENCH_run_all.json");
    let history_path = arg("history=", "BENCH_history.jsonl");
    // Replay runs get their own journal by default so an execute-mode
    // `--resume` never picks up (or is poisoned by) replay-mode state.
    let journal_default = if replay {
        "results/journal-replay.jsonl"
    } else {
        "results/journal.jsonl"
    };
    let journal_path = arg("journal=", journal_default);
    let resume = args.iter().any(|a| a == "--resume");

    let (jobs, seed, opts, tier) = (common.jobs, common.seed, common.supervise, common.tier);
    let profile = match runner::u64_from_args(&args, "profile", 0) {
        Ok(v) => v != 0,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Wrap each job to record its wall time as it runs; resumed
    // (journal-reused) experiments never execute, so they are absent
    // from the BENCH record by construction. With `profile=1` each job's
    // thread also runs the component self-profiler, and the per-label
    // span aggregates merge into one map across all workers.
    let timings: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    type SpanMap = std::collections::BTreeMap<&'static str, (u64, u64, u64)>;
    let spans: Arc<Mutex<SpanMap>> = Arc::new(Mutex::new(SpanMap::new()));
    let replay_phases: Arc<Mutex<Vec<ReplayPhases>>> = Arc::new(Mutex::new(Vec::new()));

    // `mode=replay` routes every experiment through the record → codec →
    // batched-replay backend; the report each job yields is the replayed
    // one, already asserted byte-identical to its own execution, so the
    // CSV/JSON artifacts below come out byte-identical to mode=execute.
    // `tier=` re-organises every entry's memory system before it runs —
    // the whole catalog under one hybrid-tier policy (the grid's tier
    // axis; `tier=none` runs the catalog exactly as defined, including
    // its own `tier/...` cells).
    let base_catalog: Vec<(String, SharedJob<Report>)> = if replay {
        catalog_entries(seed)
            .into_iter()
            .map(|entry| {
                let id = entry.name().to_string();
                let phases = replay_phases.clone();
                let entry = Arc::new(entry.with_tier(tier));
                let job: SharedJob<Report> = Arc::new(move || {
                    let run = replay_mode::replay_entry(&entry);
                    phases.lock().expect("phases lock").push(ReplayPhases {
                        name: entry.name().to_string(),
                        execute_wall_ns: run.execute_wall_ns,
                        codec_wall_ns: run.codec_wall_ns,
                        eval_wall_ns: run.eval_wall_ns,
                        raw_ops: run.raw_ops,
                        folded_ops: run.folded_ops,
                        fast_ops: run.fast_ops,
                        fallback_ops: run.fallback_ops,
                        fast_forwarded: run.fast_forwarded,
                        replayed: run.replayed,
                        fallback_reason: run.fallback_reason,
                    });
                    run.report
                });
                (id, job)
            })
            .collect()
    } else {
        catalog_entries(seed)
            .into_iter()
            .map(|entry| {
                let id = entry.name().to_string();
                let entry = Arc::new(entry.with_tier(tier));
                let job: SharedJob<Report> = Arc::new(move || {
                    let mut m = Machine::new(entry.config());
                    entry.drive(&mut m);
                    m.report(entry.name().to_string())
                });
                (id, job)
            })
            .collect()
    };
    let catalog: Vec<(String, SharedJob<Report>)> = base_catalog
        .into_iter()
        .map(|(id, job)| {
            let timings = timings.clone();
            let spans = spans.clone();
            let name = id.clone();
            let wrapped: SharedJob<Report> = Arc::new(move || {
                if profile {
                    prof::enable();
                }
                let t0 = Instant::now();
                let r = job();
                let wall = t0.elapsed().as_nanos() as u64;
                if profile {
                    let mut merged = spans.lock().expect("spans lock");
                    for t in prof::take() {
                        let e = merged.entry(t.label).or_insert((0, 0, 0));
                        e.0 += t.count;
                        e.1 = e.1.saturating_add(t.total_ns);
                        e.2 = e.2.max(t.max_ns);
                    }
                }
                timings
                    .lock()
                    .expect("timings lock")
                    .push((name.clone(), wall));
                r
            });
            (id, wrapped)
        })
        .collect();

    let t_total = Instant::now();
    let outcomes = match journal::run_resumable(
        catalog,
        seed,
        jobs,
        &opts,
        Path::new(&journal_path),
        resume,
        &report_artifacts,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: journal I/O failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let total_wall = t_total.elapsed();

    let ok_count = outcomes.iter().filter(|(_, o)| o.is_ok()).count();
    let mut f = std::fs::File::create(&path).expect("create results file");
    f.write_all(csv_from_outcomes(&outcomes).as_bytes())
        .expect("write CSV");

    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    let doc = document_from_outcomes(seed, &outcomes);
    let mut jf = std::fs::File::create(&json_path).expect("create JSON report");
    writeln!(jf, "{doc:#}").expect("write JSON report");

    // Host-side perf record: per-experiment wall clock, their serial sum,
    // and the elapsed (parallel) total. serial_sum / total ≈ the speedup
    // the job pool delivered on this host. Only freshly-executed
    // experiments appear (a resumed run times just what it reran).
    let mut timings = Arc::try_unwrap(timings)
        .expect("workers exited")
        .into_inner()
        .expect("timings lock");
    let position: std::collections::HashMap<&str, usize> = outcomes
        .iter()
        .enumerate()
        .map(|(i, (id, _))| (id.as_str(), i))
        .collect();
    timings.sort_by_key(|(name, _)| position.get(name.as_str()).copied().unwrap_or(usize::MAX));
    let mut bench = Json::obj();
    bench.set("schema", Json::Str("impulse-bench-run-all-v1".into()));
    bench.set("mode", Json::Str(mode.clone()));
    bench.set("tier", Json::Str(tier.name().to_string()));
    bench.set("jobs", Json::UInt(jobs as u64));
    bench.set("seed", Json::UInt(seed));
    bench.set("experiments_run", Json::UInt(timings.len() as u64));
    bench.set("total_wall_ns", Json::UInt(total_wall.as_nanos() as u64));
    bench.set(
        "serial_sum_wall_ns",
        Json::UInt(timings.iter().map(|(_, ns)| ns).sum()),
    );
    bench.set(
        "experiments",
        Json::Arr(
            timings
                .iter()
                .map(|(name, ns)| {
                    let mut e = Json::obj();
                    e.set("name", Json::Str(name.clone()));
                    e.set("wall_ns", Json::UInt(*ns));
                    e
                })
                .collect(),
        ),
    );
    if profile {
        let merged = spans.lock().expect("spans lock");
        bench.set(
            "profile",
            Json::Arr(
                merged
                    .iter()
                    .map(|(label, &(count, total_ns, max_ns))| {
                        let mut s = Json::obj();
                        s.set("span", Json::Str((*label).to_string()));
                        s.set("count", Json::UInt(count));
                        s.set("total_ns", Json::UInt(total_ns));
                        s.set("max_ns", Json::UInt(max_ns));
                        s
                    })
                    .collect(),
            ),
        );
    }
    // Replay-mode phase walls: per experiment and summed, plus the
    // headline execute-vs-replay speedup on the timing-evaluation
    // phase. `execute_wall_ns` is the recording run — a complete
    // execution with capture hooks — so `execute_sum / eval_sum` is the
    // in-repo measurement behind the replay-backend speedup claim.
    let mut replay_summary: Option<(u64, u64, u64, u64)> = None;
    if replay {
        let mut phases = Arc::try_unwrap(replay_phases)
            .map_err(|_| "workers exited")
            .expect("workers exited")
            .into_inner()
            .expect("phases lock");
        phases.sort_by_key(|p| position.get(p.name.as_str()).copied().unwrap_or(usize::MAX));
        let execute_sum: u64 = phases.iter().map(|p| p.execute_wall_ns).sum();
        let codec_sum: u64 = phases.iter().map(|p| p.codec_wall_ns).sum();
        let eval_sum: u64 = phases.iter().map(|p| p.eval_wall_ns).sum();
        let replayed_count = phases.iter().filter(|p| p.replayed).count() as u64;
        let mut r = Json::obj();
        r.set("execute_sum_wall_ns", Json::UInt(execute_sum));
        r.set("codec_sum_wall_ns", Json::UInt(codec_sum));
        r.set("eval_sum_wall_ns", Json::UInt(eval_sum));
        r.set("replayed", Json::UInt(replayed_count));
        r.set(
            "eval_speedup",
            Json::Float(execute_sum as f64 / eval_sum.max(1) as f64),
        );
        r.set(
            "experiments",
            Json::Arr(
                phases
                    .iter()
                    .map(|p| {
                        let mut e = Json::obj();
                        e.set("name", Json::Str(p.name.clone()));
                        e.set("execute_wall_ns", Json::UInt(p.execute_wall_ns));
                        e.set("codec_wall_ns", Json::UInt(p.codec_wall_ns));
                        e.set("eval_wall_ns", Json::UInt(p.eval_wall_ns));
                        e.set("raw_ops", Json::UInt(p.raw_ops));
                        e.set("folded_ops", Json::UInt(p.folded_ops));
                        e.set("fast_ops", Json::UInt(p.fast_ops));
                        e.set("fallback_ops", Json::UInt(p.fallback_ops));
                        e.set("fast_forwarded", Json::Bool(p.fast_forwarded));
                        e.set("replayed", Json::Bool(p.replayed));
                        if let Some(why) = &p.fallback_reason {
                            e.set("fallback_reason", Json::Str(why.clone()));
                        }
                        e
                    })
                    .collect(),
            ),
        );
        bench.set("replay", r);
        replay_summary = Some((execute_sum, codec_sum, eval_sum, replayed_count));
    }
    let mut bf = std::fs::File::create(&bench_path).expect("create bench record");
    writeln!(bf, "{bench:#}").expect("write bench record");

    let failed_count = (outcomes.len() - ok_count) as u64;
    let serial_sum: u64 = timings.iter().map(|(_, ns)| ns).sum();
    let (git, git_dirty) = impulse_bench::git_stamp();
    let mut hist = impulse_bench::history_record(
        &git,
        git_dirty,
        seed,
        jobs,
        timings.len() as u64,
        failed_count,
        total_wall.as_nanos() as u64,
        serial_sum,
    );
    hist.set("mode", Json::Str(mode.clone()));
    hist.set("tier", Json::Str(tier.name().to_string()));
    if let Some((execute_sum, codec_sum, eval_sum, replayed_count)) = replay_summary {
        hist.set("replay_execute_sum_wall_ns", Json::UInt(execute_sum));
        hist.set("replay_codec_sum_wall_ns", Json::UInt(codec_sum));
        hist.set("replay_eval_sum_wall_ns", Json::UInt(eval_sum));
        hist.set("replay_replayed", Json::UInt(replayed_count));
        hist.set(
            "replay_eval_speedup",
            Json::Float(execute_sum as f64 / eval_sum.max(1) as f64),
        );
    }
    impulse_bench::append_history(Path::new(&history_path), &hist).expect("append history rollup");

    println!(
        "wrote {ok_count} experiment rows to {path} and full reports to {json_path} \
         ({jobs} jobs, {:.2}s wall, timings in {bench_path})",
        total_wall.as_secs_f64(),
    );
    if let Some((execute_sum, _, eval_sum, replayed_count)) = replay_summary {
        println!(
            "replay backend: {replayed_count}/{} replayed; timing evaluation \
             {:.1} ms vs {:.1} ms executed ({:.1}x)",
            outcomes.len(),
            eval_sum as f64 / 1e6,
            execute_sum as f64 / 1e6,
            execute_sum as f64 / eval_sum.max(1) as f64,
        );
    }
    impulse_bench::print_artifacts(&[&path, &json_path, &bench_path, &history_path, &journal_path]);

    let failures: Vec<&(String, Result<journal::RunArtifacts, String>)> =
        outcomes.iter().filter(|(_, o)| o.is_err()).collect();
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (id, o) in &failures {
            if let Err(e) = o {
                eprintln!("FAILED: {id}: {e}");
            }
        }
        eprintln!(
            "{} of {} experiments failed (recorded in {journal_path}; rerun with --resume)",
            failures.len(),
            outcomes.len()
        );
        ExitCode::FAILURE
    }
}
