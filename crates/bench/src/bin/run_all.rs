//! Runs every experiment at quick scale and writes one CSV of headline
//! metrics plus a full JSON report — the one-command regeneration entry
//! point (`results.csv` and `results/run_all.json` in the current
//! directory, or `out=<path>` / `json=<path>`).
//!
//! The JSON report (schema `impulse-report-v1` per experiment) carries
//! what the CSV cannot: per-level latency histograms with p50/p90/p99
//! and the demand-cycle attribution table whose stage totals sum to each
//! epoch's demand-access cycles.
//!
//! For the paper-layout tables with reference values, run the individual
//! binaries (`table1`, `table2`, `fig1`, ...).

use std::io::Write;
use std::sync::Arc;

use impulse_obs::Json;
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_workloads::{
    ChannelFilter, DbScan, DbVariant, Diagonal, DiagonalVariant, IpcGather, IpcVariant, Lu,
    LuVariant, MediaVariant, Mmp, MmpParams, MmpVariant, Smvp, SmvpVariant, SparsePattern,
    TlbStress, TlbVariant, Transpose, TransposeVariant,
};

fn collect() -> Vec<Report> {
    let mut out = Vec::new();

    // Table 1 cells.
    let pattern = Arc::new(SparsePattern::generate(14_000, 24, 0x00c9_a15e));
    for (variant, mc_pf, l1_pf) in [
        (SmvpVariant::Conventional, false, false),
        (SmvpVariant::Conventional, true, true),
        (SmvpVariant::ScatterGather, false, false),
        (SmvpVariant::ScatterGather, true, false),
        (SmvpVariant::ScatterGather, true, true),
        (SmvpVariant::Recolored, false, false),
        (SmvpVariant::Recolored, true, true),
    ] {
        let cfg = SystemConfig::paint().with_prefetch(mc_pf, l1_pf);
        let mut m = Machine::new(&cfg);
        let w = Smvp::setup(&mut m, pattern.clone(), variant).expect("smvp");
        w.run(&mut m, 1);
        out.push(m.report(format!("table1/{}/mc={mc_pf}/l1={l1_pf}", variant.name())));
        eprintln!("done: {}", out.last().unwrap().name);
    }

    // Table 2 cells.
    for variant in MmpVariant::ALL {
        let mut m = Machine::new(&SystemConfig::paint());
        let mut w = Mmp::setup(&mut m, MmpParams { n: 192, tile: 32 }, variant).expect("mmp");
        w.run(&mut m).expect("mmp run");
        out.push(m.report(format!("table2/{}", variant.name())));
        eprintln!("done: {}", out.last().unwrap().name);
    }

    // Tiled LU decomposition.
    for variant in [LuVariant::Conventional, LuVariant::TileRemap] {
        let mut m = Machine::new(&SystemConfig::paint());
        let mut w = Lu::setup(&mut m, 128, 32, variant).expect("lu");
        w.run(&mut m).expect("lu run");
        out.push(m.report(format!("lu/{}", variant.name())));
    }

    // Figure 1.
    for variant in [DiagonalVariant::Conventional, DiagonalVariant::Remapped] {
        let mut m = Machine::new(&SystemConfig::paint());
        let d = Diagonal::setup(&mut m, 2048, variant).expect("diag");
        m.reset_stats();
        d.run(&mut m, 4);
        out.push(m.report(format!("fig1/{}", variant.name())));
    }

    // Transpose.
    for variant in [TransposeVariant::Conventional, TransposeVariant::Remapped] {
        let mut m = Machine::new(&SystemConfig::paint());
        let w = Transpose::setup(&mut m, 512, variant).expect("transpose");
        m.reset_stats();
        w.column_reduce(&mut m);
        out.push(m.report(format!("transpose/{}", variant.name())));
    }

    // Superpages.
    for variant in [TlbVariant::BasePages, TlbVariant::Superpages] {
        let mut m = Machine::new(&SystemConfig::paint());
        let w = TlbStress::setup(&mut m, 8, 64, variant).expect("tlb");
        m.reset_stats();
        w.sweep(&mut m, 8);
        out.push(m.report(format!("superpage/{}", variant.name())));
    }

    // Database selection scan.
    for variant in [DbVariant::Conventional, DbVariant::ImpulseGather] {
        let mut m = Machine::new(&SystemConfig::paint().with_prefetch(true, false));
        let w = DbScan::setup(&mut m, 1 << 18, 64, 1 << 16, 0xdb, variant).expect("db");
        m.reset_stats();
        w.fetch(&mut m);
        out.push(m.report(format!("dbscan/{}", variant.name())));
    }

    // Multimedia channel extraction.
    for variant in [MediaVariant::Conventional, MediaVariant::ChannelRemap] {
        let mut m = Machine::new(&SystemConfig::paint().with_prefetch(true, false));
        let w = ChannelFilter::setup(&mut m, 1 << 20, 3, variant).expect("media");
        m.reset_stats();
        w.filter(&mut m);
        out.push(m.report(format!("media/{}", variant.name())));
    }

    // IPC.
    for variant in [IpcVariant::SoftwareGather, IpcVariant::ImpulseGather] {
        let mut m = Machine::new(&SystemConfig::paint());
        let w = IpcGather::setup(&mut m, 8, 4096, 64, variant).expect("ipc");
        m.reset_stats();
        for _ in 0..64 {
            w.send(&mut m);
        }
        out.push(m.report(format!("ipc/{}", variant.name())));
    }

    out
}

/// Bundles every experiment report into one JSON document, asserting the
/// attribution invariant for each along the way.
fn json_document(reports: &[Report]) -> Json {
    let mut arr = Vec::with_capacity(reports.len());
    for r in reports {
        let demand = r.mem.load_cycles + r.mem.store_cycles;
        assert_eq!(
            r.attr.total(),
            demand,
            "{}: attribution stages sum to {} but demand cycles are {demand}",
            r.name,
            r.attr.total(),
        );
        arr.push(r.to_json());
    }
    let mut root = Json::obj();
    root.set("schema", Json::Str("impulse-run-all-v1".into()));
    root.set("reports", Json::Arr(arr));
    root
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args
        .iter()
        .find_map(|a| a.strip_prefix("out=").map(String::from))
        .unwrap_or_else(|| "results.csv".to_string());
    let json_path = args
        .iter()
        .find_map(|a| a.strip_prefix("json=").map(String::from))
        .unwrap_or_else(|| "results/run_all.json".to_string());

    let reports = collect();

    let mut f = std::fs::File::create(&path).expect("create results file");
    writeln!(f, "{}", Report::csv_header()).expect("write header");
    for r in &reports {
        writeln!(f, "{}", r.csv_row()).expect("write row");
    }

    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    let doc = json_document(&reports);
    let mut jf = std::fs::File::create(&json_path).expect("create JSON report");
    writeln!(jf, "{doc:#}").expect("write JSON report");

    println!(
        "wrote {} experiment rows to {path} and full reports to {json_path}",
        reports.len()
    );
}
