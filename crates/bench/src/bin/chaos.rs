//! Chaos/soak harness entry point: runs the workload catalog under
//! generated fault schedules, asserts the robustness invariants, and
//! writes `results/chaos.json` (schema `impulse-chaos-v1`).
//!
//! Usage: `chaos [seed=<N>] [jobs=<N>] [out=<path>]
//! [journal=<path>] [watchdog_ms=<N>] [max_retries=<K>] [--resume]`
//!
//! Cases fan across `jobs=<N>` worker threads; results are gathered in
//! submission order and every fault is drawn from a seeded per-site
//! stream, so the JSON output is byte-identical for a fixed seed at any
//! worker count. Completed cases are journaled (fsync'd) as they finish;
//! after a crash, `--resume` reruns only what is missing and emits the
//! same bytes as an uninterrupted run. Exits nonzero if any invariant
//! was violated or any case failed to run.

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

use impulse_bench::chaos::{chaos_document, chaos_jobs, cross_case_violations, ChaosOutcome};
use impulse_bench::journal::{self, RunArtifacts};
use impulse_bench::runner::CommonArgs;

const USAGE: &str = "usage: chaos [seed=N] [jobs=N] [out=results/chaos.json] \
[journal=results/chaos-journal.jsonl] [watchdog_ms=N] [max_retries=K] [--resume]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |prefix: &str, default: &str| -> String {
        args.iter()
            .find_map(|a| a.strip_prefix(prefix).map(String::from))
            .unwrap_or_else(|| default.to_string())
    };
    let path = arg("out=", "results/chaos.json");
    let journal_path = arg("journal=", "results/chaos-journal.jsonl");
    let resume = args.iter().any(|a| a == "--resume");

    let common = match CommonArgs::parse(&args, 1999) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (jobs, seed, opts) = (common.jobs, common.seed, common.supervise);

    let results = match journal::run_resumable(
        chaos_jobs(seed),
        seed,
        jobs,
        &opts,
        Path::new(&journal_path),
        resume,
        &|o: &ChaosOutcome| RunArtifacts {
            csv: String::new(),
            json: o.to_json(),
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: journal I/O failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Rebuild the outcome list (submission order) from the artifacts;
    // journaled and freshly-run cases are indistinguishable here, which
    // is what keeps resumed chaos.json byte-identical.
    let mut outcomes: Vec<ChaosOutcome> = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    for (id, res) in &results {
        match res {
            Ok(a) => match ChaosOutcome::from_json(&a.json) {
                Some(o) => outcomes.push(o),
                None => failures.push((id.clone(), "journaled case failed to decode".into())),
            },
            Err(e) => failures.push((id.clone(), e.clone())),
        }
    }

    println!(
        "{:<14} {:<12} {:>12} {:>10} {:>9} {:>9} {:>9}",
        "workload", "scenario", "cycles", "ecc.corr", "ecc.det", "bus.tmo", "pgtbl"
    );
    for o in &outcomes {
        println!(
            "{:<14} {:<12} {:>12} {:>10} {:>9} {:>9} {:>9}",
            o.workload,
            o.scenario,
            o.cycles,
            o.ecc.corrected,
            o.ecc.detected_double,
            o.bus.timeouts,
            o.pgtbl.corruptions
        );
    }

    let doc = chaos_document(seed, &outcomes);
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut f = std::fs::File::create(&path).expect("create chaos.json");
    writeln!(f, "{doc:#}").expect("write chaos.json");
    println!("wrote {path} (seed={seed}, {} cases)", outcomes.len());
    impulse_bench::print_artifacts(&[&path, &journal_path]);

    let violations: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.violations.iter().cloned())
        .chain(cross_case_violations(&outcomes))
        .collect();

    let mut failed = false;
    if !failures.is_empty() {
        failed = true;
        eprintln!("{} case(s) failed to run:", failures.len());
        for (id, e) in &failures {
            eprintln!("  {id}: {e}");
        }
        eprintln!("(recorded in {journal_path}; rerun with --resume)");
    }
    if violations.is_empty() {
        println!("all invariants held");
    } else {
        failed = true;
        eprintln!("{} invariant violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
