//! Chaos/soak harness entry point: runs the workload catalog under
//! generated fault schedules, asserts the robustness invariants, and
//! writes `results/chaos.json` (schema `impulse-chaos-v1`).
//!
//! Usage: `chaos [seed=<N>] [jobs=<N>] [out=<path>]`
//!
//! Cases fan across `jobs=<N>` worker threads; results are gathered in
//! submission order and every fault is drawn from a seeded per-site
//! stream, so the JSON output is byte-identical for a fixed seed at any
//! worker count. Exits nonzero if any invariant was violated.

use std::io::Write;
use std::process::ExitCode;

use impulse_bench::chaos::{chaos_document, chaos_jobs, cross_case_violations};
use impulse_bench::runner;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |prefix: &str, default: &str| -> String {
        args.iter()
            .find_map(|a| a.strip_prefix(prefix).map(String::from))
            .unwrap_or_else(|| default.to_string())
    };
    let seed: u64 = arg("seed=", "1999")
        .parse()
        .expect("seed= wants an integer");
    let path = arg("out=", "results/chaos.json");
    let jobs = runner::jobs_from_args(&args);

    let outcomes = runner::run_ordered(chaos_jobs(seed), jobs);

    println!(
        "{:<14} {:<12} {:>12} {:>10} {:>9} {:>9} {:>9}",
        "workload", "scenario", "cycles", "ecc.corr", "ecc.det", "bus.tmo", "pgtbl"
    );
    for o in &outcomes {
        println!(
            "{:<14} {:<12} {:>12} {:>10} {:>9} {:>9} {:>9}",
            o.workload,
            o.scenario,
            o.cycles,
            o.ecc.corrected,
            o.ecc.detected_double,
            o.bus.timeouts,
            o.pgtbl.corruptions
        );
    }

    let doc = chaos_document(seed, &outcomes);
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut f = std::fs::File::create(&path).expect("create chaos.json");
    writeln!(f, "{doc:#}").expect("write chaos.json");
    println!("wrote {path} (seed={seed}, {} cases)", outcomes.len());

    let violations: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.violations.iter().cloned())
        .chain(cross_case_violations(&outcomes))
        .collect();
    if violations.is_empty() {
        println!("all invariants held");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} invariant violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
