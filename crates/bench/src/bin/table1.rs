//! Regenerates **Table 1** of the paper: the NAS Class A conjugate
//! gradient benchmark (sparse matrix-vector product) under three memory
//! systems × four prefetch configurations.
//!
//! Default: a scaled CG-A-like matrix (n = 14,000, ~40 nnz/row, one
//! pass) — the same cache-pressure regime at a fraction of the runtime.
//! `--paper` runs the Class A dimensions (n = 14,000, ~156 nnz/row) with
//! more passes. Overrides: `rows=`, `nnz=`, `passes=`, `seed=`.

use std::sync::Arc;

use impulse_bench::{print_table, Args, PaperRow, TableSection, PREFETCH_COLUMNS};
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_workloads::{CgBenchmark, Smvp, SmvpVariant, SparsePattern};

fn run_cell(
    pattern: &Arc<SparsePattern>,
    variant: SmvpVariant,
    mc_pf: bool,
    l1_pf: bool,
    passes: u64,
    full_cg: bool,
) -> Report {
    let cfg = SystemConfig::paint().with_prefetch(mc_pf, l1_pf);
    let mut m = Machine::new(&cfg);
    if full_cg {
        let cg = CgBenchmark::setup(&mut m, pattern.clone(), variant).expect("CG setup");
        cg.run(&mut m, passes);
    } else {
        let w = Smvp::setup(&mut m, pattern.clone(), variant).expect("SMVP setup");
        w.run(&mut m, passes);
    }
    m.report(variant.name())
}

const PAPER_CONVENTIONAL: [PaperRow; 4] = [
    PaperRow {
        time: 2.81,
        l1: 64.6,
        l2: 29.9,
        mem: 5.5,
        avg_load: 4.75,
        speedup: 0.0,
    },
    PaperRow {
        time: 2.69,
        l1: 64.6,
        l2: 29.9,
        mem: 5.5,
        avg_load: 4.38,
        speedup: 1.04,
    },
    PaperRow {
        time: 2.51,
        l1: 67.7,
        l2: 30.4,
        mem: 1.9,
        avg_load: 3.56,
        speedup: 1.12,
    },
    PaperRow {
        time: 2.49,
        l1: 67.7,
        l2: 30.4,
        mem: 1.9,
        avg_load: 3.54,
        speedup: 1.13,
    },
];

const PAPER_SCATTER_GATHER: [PaperRow; 4] = [
    PaperRow {
        time: 2.11,
        l1: 88.0,
        l2: 4.4,
        mem: 7.6,
        avg_load: 5.24,
        speedup: 1.33,
    },
    PaperRow {
        time: 1.68,
        l1: 88.0,
        l2: 4.4,
        mem: 7.6,
        avg_load: 3.53,
        speedup: 1.67,
    },
    PaperRow {
        time: 1.51,
        l1: 94.7,
        l2: 4.3,
        mem: 1.0,
        avg_load: 2.19,
        speedup: 1.86,
    },
    PaperRow {
        time: 1.44,
        l1: 94.7,
        l2: 4.3,
        mem: 1.0,
        avg_load: 2.04,
        speedup: 1.95,
    },
];

const PAPER_RECOLORING: [PaperRow; 4] = [
    PaperRow {
        time: 2.70,
        l1: 64.7,
        l2: 30.9,
        mem: 4.4,
        avg_load: 4.47,
        speedup: 1.04,
    },
    PaperRow {
        time: 2.57,
        l1: 64.7,
        l2: 31.0,
        mem: 4.3,
        avg_load: 4.05,
        speedup: 1.09,
    },
    PaperRow {
        time: 2.39,
        l1: 67.7,
        l2: 31.3,
        mem: 1.0,
        avg_load: 3.28,
        speedup: 1.18,
    },
    PaperRow {
        time: 2.37,
        l1: 67.7,
        l2: 31.3,
        mem: 1.0,
        avg_load: 3.26,
        speedup: 1.19,
    },
];

fn main() {
    let args = Args::parse();
    let rows = args.get("rows", 14_000);
    let nnz = args.get("nnz", if args.paper { 156 } else { 40 });
    let passes = args.get("passes", if args.paper { 3 } else { 1 });
    let seed = args.get("seed", 0x00c9_a15e);
    // cg=1 runs the complete CG iteration (SMVP + dot products + AXPYs +
    // the gather-consistency flush of p), as the paper's whole-benchmark
    // timing does; the default times the SMVP kernel.
    let full_cg = args.get("cg", 0) != 0;

    // mesh=SIDE swaps in a Spark98-like 2-D finite-element mesh pattern
    // (SIDE × SIDE nodes) instead of the CG-A-like random matrix.
    let mesh = args.get("mesh", 0);

    let pattern = if mesh > 0 {
        eprintln!(
            "generating Spark98-like mesh pattern: {mesh}x{mesh} nodes, {passes} {} pass(es)...",
            if full_cg { "full-CG" } else { "SMVP" }
        );
        Arc::new(SparsePattern::mesh2d(mesh))
    } else {
        eprintln!(
            "generating CG pattern: {rows} rows, ~{nnz} nnz/row, {passes} {} pass(es)...",
            if full_cg { "full-CG" } else { "SMVP" }
        );
        Arc::new(SparsePattern::generate(rows, nnz, seed))
    };
    eprintln!("pattern: {} non-zeroes", pattern.nnz());

    let variants = [
        (
            SmvpVariant::Conventional,
            "Conventional memory system",
            PAPER_CONVENTIONAL,
        ),
        (
            SmvpVariant::ScatterGather,
            "Impulse with scatter/gather remapping",
            PAPER_SCATTER_GATHER,
        ),
        (
            SmvpVariant::Recolored,
            "Impulse with page recoloring",
            PAPER_RECOLORING,
        ),
    ];

    let mut sections = Vec::new();
    for (variant, title, paper) in variants {
        let mut reports = Vec::new();
        for (mc_pf, l1_pf, label) in PREFETCH_COLUMNS {
            eprintln!("running {title} / {label}...");
            reports.push(run_cell(&pattern, variant, mc_pf, l1_pf, passes, full_cg));
        }
        sections.push(TableSection {
            title: title.to_string(),
            reports,
            // The paper's reference numbers are for CG-A, not the mesh.
            paper: if mesh > 0 { None } else { Some(paper) },
        });
    }

    let baseline = sections[0].reports[0].clone();
    print_table(
        &format!(
            "Table 1 — {}{} (n={}, nnz={}, passes={passes})",
            if mesh > 0 {
                "Spark98-like mesh SMVP"
            } else {
                "NAS conjugate gradient"
            },
            if full_cg { " [full CG iterations]" } else { "" },
            pattern.n(),
            pattern.nnz()
        ),
        &sections,
        &baseline,
    );

    // The paper's headline claim.
    let sg_pf = &sections[1].reports[1];
    println!(
        "headline: scatter/gather + controller prefetch speedup = {:.2} (paper: 1.67)",
        sg_pf.speedup_over(&baseline)
    );
}
