//! The experiment client: talks `impulse-wire-v1` to a running daemon.
//!
//! Usage:
//!
//! * `client run <experiment> [socket=...] [seed=N] [tenant=T]
//!   [class=interactive|bulk] [deadline_ms=N] [attempts=N]` — run (or
//!   fetch) one experiment and print its CSV row and report.
//! * `client catalog [socket=...] [seed=N] [jobs=N] [dup=N]
//!   [csv=<path>] [json=<path>] ...` — run the whole catalog through
//!   the daemon from `jobs` concurrent connections (`dup` requests per
//!   experiment, exercising coalescing) and assemble the same
//!   `results.csv` / `run_all.json` documents the batch runner writes —
//!   byte-identical for the same seed.
//! * `client stats|ping|shutdown [socket=...]` — daemon control.
//!
//! Retry jitter is deterministic per `jitter_seed`, so a chaos run is
//! reproducible end to end.

#[cfg(unix)]
mod unix_main {
    use std::io::Write;
    use std::path::{Path, PathBuf};
    use std::process::ExitCode;
    use std::sync::Mutex;

    use impulse_bench::experiments::{csv_from_outcomes, document_from_outcomes, DEFAULT_SEED};
    use impulse_bench::journal::RunArtifacts;
    use impulse_bench::runner::{self, ArgError};
    use impulse_obs::Json;
    use impulse_serve::{Class, Client, RetryPolicy, RunRequest};
    use impulse_types::TierPolicy;

    const USAGE: &str = "usage: client <run <experiment>|catalog|stats|ping|shutdown> \
[socket=impulse.sock] [seed=N] [tenant=cli] [class=interactive|bulk] [deadline_ms=N] \
[tier=none|flat|cache] [attempts=N] [recv_timeout_ms=N] [jitter_seed=N] [jobs=N] [dup=N] \
[csv=<path>] [json=<path>]";

    struct Opts {
        socket: PathBuf,
        seed: u64,
        tenant: String,
        class: Class,
        deadline_ms: u64,
        tier: TierPolicy,
        policy: RetryPolicy,
        jitter_seed: u64,
        jobs: usize,
        dup: u64,
        csv: Option<String>,
        json: Option<String>,
    }

    fn parse_opts(args: &[String]) -> Result<Opts, String> {
        let arg = |prefix: &str| -> Option<String> {
            args.iter()
                .find_map(|a| a.strip_prefix(prefix).map(String::from))
        };
        let typed = || -> Result<(u64, u64, u64, u64, u64, u64), ArgError> {
            Ok((
                runner::u64_from_args(args, "seed", DEFAULT_SEED)?,
                runner::u64_from_args(args, "deadline_ms", 0)?,
                runner::u64_from_args(args, "attempts", 8)?,
                runner::u64_from_args(args, "recv_timeout_ms", 120_000)?,
                runner::u64_from_args(args, "jitter_seed", 1)?,
                runner::u64_from_args(args, "dup", 1)?,
            ))
        };
        let (seed, deadline_ms, attempts, recv_timeout_ms, jitter_seed, dup) =
            typed().map_err(|e| e.to_string())?;
        let class = match arg("class=").as_deref() {
            None => Class::Interactive,
            Some(s) => Class::parse(s).ok_or_else(|| format!("unknown class `{s}`"))?,
        };
        let tier = match arg("tier=").as_deref() {
            None => TierPolicy::None,
            Some(s) => TierPolicy::parse(s).ok_or_else(|| format!("unknown tier `{s}`"))?,
        };
        Ok(Opts {
            socket: PathBuf::from(arg("socket=").unwrap_or_else(|| "impulse.sock".into())),
            seed,
            tenant: arg("tenant=").unwrap_or_else(|| "cli".into()),
            class,
            deadline_ms,
            tier,
            policy: RetryPolicy {
                max_attempts: attempts.clamp(1, 1000) as u32,
                recv_timeout_ms,
                ..RetryPolicy::default()
            },
            jitter_seed,
            jobs: runner::jobs_from_args(args).map_err(|e| e.to_string())?,
            dup: dup.max(1),
            csv: arg("csv="),
            json: arg("json="),
        })
    }

    fn request(opts: &Opts, experiment: &str) -> RunRequest {
        RunRequest {
            experiment: experiment.to_string(),
            seed: opts.seed,
            tenant: opts.tenant.clone(),
            class: opts.class,
            deadline_ms: opts.deadline_ms,
            tier: opts.tier,
        }
    }

    fn cmd_run(opts: &Opts, experiment: &str) -> ExitCode {
        let mut client = Client::new(&opts.socket, opts.policy, opts.jitter_seed);
        match client.run(&request(opts, experiment)) {
            Ok(res) => {
                eprintln!(
                    "key={} cached={} deduped={}",
                    res.key_hex, res.cached, res.deduped
                );
                println!("{}", res.csv);
                println!("{}", res.report);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    }

    /// One catalog row: the experiment name and its artifacts (or the
    /// typed error text).
    type Outcome = (String, Result<RunArtifacts, String>);

    /// Fans the whole catalog across `jobs` worker threads, `dup`
    /// identical requests per experiment; asserts duplicates agree
    /// byte-for-byte and assembles the batch documents.
    fn cmd_catalog(opts: &Opts) -> ExitCode {
        let names: Vec<String> = impulse_bench::experiments::run_all_experiments(opts.seed)
            .iter()
            .map(|e| e.name().to_string())
            .collect();
        let mut work: Vec<(usize, String)> = Vec::new();
        for _ in 0..opts.dup {
            work.extend(names.iter().cloned().enumerate());
        }
        let work = Mutex::new(work);
        let outcomes: Mutex<Vec<Vec<Outcome>>> = Mutex::new(vec![Vec::new(); names.len()]);

        std::thread::scope(|scope| {
            for t in 0..opts.jobs.max(1) {
                let work = &work;
                let outcomes = &outcomes;
                let opts_ref = &*opts;
                scope.spawn(move || {
                    let mut client = Client::new(
                        &opts_ref.socket,
                        opts_ref.policy,
                        opts_ref.jitter_seed.wrapping_add(t as u64),
                    );
                    loop {
                        let item = work.lock().expect("work lock").pop();
                        let Some((idx, name)) = item else { break };
                        let outcome = match client.run(&request(opts_ref, &name)) {
                            Ok(res) => match Json::parse(&res.report) {
                                Ok(json) => Ok(RunArtifacts { csv: res.csv, json }),
                                Err(e) => Err(format!("unparseable report: {e:?}")),
                            },
                            Err(e) => Err(e.to_string()),
                        };
                        outcomes.lock().expect("outcomes lock")[idx].push((name, outcome));
                    }
                });
            }
        });

        // Collapse duplicates, asserting byte-identity between them.
        let mut rows: Vec<Outcome> = Vec::new();
        let mut failed = 0usize;
        for (idx, name) in names.iter().enumerate() {
            let copies = &outcomes.lock().expect("outcomes lock")[idx];
            let mut best: Option<Outcome> = None;
            for (n, o) in copies {
                match (&best, o) {
                    (Some((_, Ok(prev))), Ok(cur)) if prev != cur => {
                        eprintln!("error: duplicate responses for `{name}` disagree");
                        return ExitCode::FAILURE;
                    }
                    (None | Some((_, Err(_))), _) => best = Some((n.clone(), o.clone())),
                    _ => {}
                }
            }
            let row = best.unwrap_or_else(|| (name.clone(), Err("no response".into())));
            if let Err(e) = &row.1 {
                failed += 1;
                eprintln!("failed: {} [{e}]", row.0);
            }
            rows.push(row);
        }

        let csv = csv_from_outcomes(&rows);
        let doc = document_from_outcomes(opts.seed, &rows);
        let mut artifacts: Vec<String> = Vec::new();
        for (path, text) in [(&opts.csv, csv), (&opts.json, format!("{doc:#}\n"))] {
            if let Some(path) = path {
                if let Some(dir) = Path::new(path).parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir).expect("create output directory");
                    }
                }
                let mut f = std::fs::File::create(path).expect("create output file");
                f.write_all(text.as_bytes()).expect("write output file");
                artifacts.push(path.clone());
            }
        }
        if !artifacts.is_empty() {
            let refs: Vec<&str> = artifacts.iter().map(String::as_str).collect();
            impulse_bench::print_artifacts(&refs);
        }
        println!(
            "catalog: {} experiments x{} dup, {failed} failed",
            names.len(),
            opts.dup
        );
        if failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }

    pub fn main() -> ExitCode {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mode = args.first().cloned().unwrap_or_default();
        let rest: &[String] = args.get(1..).unwrap_or(&[]);
        let opts = match parse_opts(rest) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                return ExitCode::from(2);
            }
        };
        let client = || Client::new(&opts.socket, opts.policy, opts.jitter_seed);
        match mode.as_str() {
            "run" => match rest.iter().find(|a| !a.contains('=')) {
                Some(experiment) => cmd_run(&opts, experiment),
                None => {
                    eprintln!("error: run needs an experiment name\n{USAGE}");
                    ExitCode::from(2)
                }
            },
            "catalog" => cmd_catalog(&opts),
            "stats" => match client().stats() {
                Ok(doc) => {
                    println!("{doc:#}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            "ping" => match client().ping() {
                Ok(()) => {
                    println!("pong");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            "shutdown" => match client().shutdown() {
                Ok(()) => {
                    println!("daemon draining");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            other => {
                eprintln!("error: unknown mode `{other}`\n{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    unix_main::main()
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("client requires Unix domain sockets; this platform has none");
    std::process::ExitCode::from(2)
}
