//! The experiment daemon entry point: serves the `run_all` catalog over
//! a Unix socket with admission control, request coalescing, a
//! journal-backed result cache, and supervised workers.
//!
//! Usage: `serve [socket=impulse.sock] [journal=results/serve-journal.bin]
//! [workers=N] [watchdog_ms=N] [max_retries=K] [request_timeout_ms=N]
//! [idle_timeout_ms=N] [publish_stall_ms=N] [burst=N] [refill_per_sec=N]
//! [interactive_queue_cap=N] [bulk_queue_cap=N] [max_bulk_slots=N]
//! [--chaos-hooks]`
//!
//! `--chaos-hooks` adds the synthetic `__chaos/*` fault-injection
//! experiments to the catalog — for the chaos suite only, never for
//! real serving. `publish_stall_ms` widens the window between journal
//! fsync and client notification so kill-mid-publish tests can land
//! inside it; leave it at 0 otherwise.

#[cfg(unix)]
mod unix_main {
    use std::path::PathBuf;
    use std::process::ExitCode;
    use std::sync::Arc;

    use impulse_bench::runner::{self, ArgError};
    use impulse_bench::serve_support::CatalogBackend;
    use impulse_serve::{AdmissionConfig, Backend, Server, ServerConfig};

    const USAGE: &str = "usage: serve [socket=impulse.sock] \
[journal=results/serve-journal.bin] [workers=N] [watchdog_ms=N] [max_retries=K] \
[request_timeout_ms=N] [idle_timeout_ms=N] [publish_stall_ms=N] [burst=N] \
[refill_per_sec=N] [interactive_queue_cap=N] [bulk_queue_cap=N] [max_bulk_slots=N] \
[--chaos-hooks]";

    pub fn main() -> ExitCode {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let arg = |prefix: &str, default: &str| -> String {
            args.iter()
                .find_map(|a| a.strip_prefix(prefix).map(String::from))
                .unwrap_or_else(|| default.to_string())
        };
        let socket = PathBuf::from(arg("socket=", "impulse.sock"));
        let journal = PathBuf::from(arg("journal=", "results/serve-journal.bin"));
        let chaos_hooks = args.iter().any(|a| a == "--chaos-hooks");

        let defaults = ServerConfig::new(socket.clone(), journal.clone());
        let adm_defaults = AdmissionConfig::default();
        let typed = || -> Result<(ServerConfig, usize), ArgError> {
            let supervise = runner::supervise_from_args(&args)?;
            let mut cfg = ServerConfig::new(socket.clone(), journal.clone());
            cfg.workers = runner::u64_from_args(&args, "workers", defaults.workers as u64)?
                .clamp(1, 256) as usize;
            cfg.watchdog_ms = supervise
                .timeout
                .map_or(defaults.watchdog_ms, |d| d.as_millis() as u64);
            cfg.max_retries = supervise.max_attempts;
            cfg.request_timeout_ms =
                runner::u64_from_args(&args, "request_timeout_ms", defaults.request_timeout_ms)?;
            cfg.idle_timeout_ms =
                runner::u64_from_args(&args, "idle_timeout_ms", defaults.idle_timeout_ms)?;
            cfg.publish_stall_ms =
                runner::u64_from_args(&args, "publish_stall_ms", defaults.publish_stall_ms)?;
            cfg.admission.tenant_burst =
                runner::u64_from_args(&args, "burst", adm_defaults.tenant_burst)?;
            cfg.admission.tenant_refill_per_sec =
                runner::u64_from_args(&args, "refill_per_sec", adm_defaults.tenant_refill_per_sec)?;
            cfg.admission.interactive_queue_cap = runner::u64_from_args(
                &args,
                "interactive_queue_cap",
                adm_defaults.interactive_queue_cap as u64,
            )? as usize;
            cfg.admission.bulk_queue_cap =
                runner::u64_from_args(&args, "bulk_queue_cap", adm_defaults.bulk_queue_cap as u64)?
                    as usize;
            cfg.admission.max_bulk_slots =
                runner::u64_from_args(&args, "max_bulk_slots", adm_defaults.max_bulk_slots as u64)?
                    .max(1) as usize;
            let workers = cfg.workers;
            Ok((cfg, workers))
        };
        let (cfg, workers) = match typed() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                return ExitCode::from(2);
            }
        };

        let backend: Arc<dyn Backend> = if chaos_hooks {
            Arc::new(CatalogBackend::with_chaos_hooks())
        } else {
            Arc::new(CatalogBackend::new())
        };
        let names = backend.names().len();
        let server = match Server::start(backend, cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: could not start daemon: {e}");
                return ExitCode::FAILURE;
            }
        };
        let recovery = server.recovery();
        eprintln!(
            "impulse-serve: listening on {} ({names} experiments, {workers} workers, {})",
            socket.display(),
            recovery,
        );
        match server.run() {
            Ok(()) => {
                eprintln!("impulse-serve: drained and stopped");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: accept loop failed: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    unix_main::main()
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("serve requires Unix domain sockets; this platform has none");
    std::process::ExitCode::from(2)
}
