//! Flight-recorder capture tooling over the `run_all` catalog.
//!
//! `trace record` reruns the full 24-experiment catalog with the MC
//! flight recorder and hotness sketch enabled, writes one
//! `impulse-trace-v1` capture per experiment plus a summary document and
//! combined heatmap export, and round-trip-verifies every capture
//! (decode → re-encode must be bit-exact) before it is accepted. The
//! grid fans over `jobs=N` workers and is journaled/`--resume`-aware
//! like `run_all`; none of the written artifacts contain wall-clock
//! times, so they are byte-identical at any job count and across
//! resumed runs.
//!
//! `trace replay` exercises the *replay* capture format (the
//! `impulse-replay-v1` op stream, distinct from the flight recorder's
//! event log): each selected catalog experiment is executed once with
//! the op recorder attached, round-tripped through the codec, evaluated
//! by the batched replay backend, and its replayed report asserted
//! byte-identical to the executed one. Per-experiment phase timings and
//! the aggregate execute/eval ratio are printed; `save=DIR` additionally
//! writes each encoded capture to disk.
//!
//! The other subcommands work on capture files offline:
//!
//! * `trace dump <file>` — header plus a decoded event table
//! * `trace diff <a> <b>` — first divergence between two captures
//! * `trace top <file>` — exact per-line access counts, hottest first
//!
//! Usage:
//!
//! ```text
//! trace record [dir=results/trace] [seed=N] [jobs=N] [flight=N] [top=N]
//!              [watchdog_ms=N] [max_retries=K] [--resume]
//! trace replay [match=SUBSTR] [seed=N] [save=DIR]
//! trace dump <capture.trace> [limit=N]
//! trace diff <a.trace> <b.trace>
//! trace top <capture.trace> [k=N]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use impulse_bench::experiments::{catalog_entries, run_all_experiments_obs, ObsSpec, DEFAULT_SEED};
use impulse_bench::journal::{self, RunArtifacts};
use impulse_bench::replay_mode;
use impulse_bench::runner::{self, SharedJob, SuperviseOpts};
use impulse_core::flight::{self, Capture};
use impulse_obs::{Json, SketchConfig};
use impulse_types::ExperimentKey;

const USAGE: &str = "usage: trace record [dir=results/trace] [seed=N] [jobs=N] [flight=N] \
[top=N] [watchdog_ms=N] [max_retries=K] [--resume]\n\
       trace replay [match=SUBSTR] [seed=N] [save=DIR]\n\
       trace dump <capture.trace> [limit=N]\n\
       trace diff <a.trace> <b.trace>\n\
       trace top <capture.trace> [k=N]";

/// Summary document schema identifier.
const SUMMARY_SCHEMA: &str = "impulse-trace-summary-v1";
/// Combined heatmap document schema identifier.
const HEATMAPS_SCHEMA: &str = "impulse-trace-heatmaps-v1";

/// Catalog names contain `/`, spaces, and `=`; flatten them to safe
/// single-segment file stems (stable, collision-free for the catalog).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn load_capture(path: &str) -> Result<Capture, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    flight::decode(&bytes).map_err(|e| format!("{path}: {e}"))
}

/// Exact per-line access counts from a capture's events, hottest first
/// (count desc, line asc — the same order the sketch's `top` uses).
fn exact_top(cap: &Capture) -> Vec<(u64, u64)> {
    let mut counts = std::collections::HashMap::new();
    for e in &cap.events {
        *counts.entry(e.line).or_insert(0u64) += 1;
    }
    let mut out: Vec<(u64, u64)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

fn cmd_record(args: &[String]) -> ExitCode {
    let arg = |prefix: &str, default: &str| -> String {
        args.iter()
            .find_map(|a| a.strip_prefix(prefix).map(String::from))
            .unwrap_or_else(|| default.to_string())
    };
    let dir = arg("dir=", "results/trace");
    let resume = args.iter().any(|a| a == "--resume");
    let typed = || -> Result<(usize, u64, u64, u64, SuperviseOpts), runner::ArgError> {
        Ok((
            runner::jobs_from_args(args)?,
            runner::u64_from_args(args, "seed", DEFAULT_SEED)?,
            runner::u64_from_args(args, "flight", 1 << 20)?,
            runner::u64_from_args(args, "top", 32)?,
            runner::supervise_from_args(args)?,
        ))
    };
    let (jobs, seed, flight_cap, top_k, opts) = match typed() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if flight_cap == 0 {
        eprintln!("error: flight=0 records nothing; pick a ring capacity\n{USAGE}");
        return ExitCode::from(2);
    }
    let sketch = SketchConfig::default();
    let obs = ObsSpec::recording(flight_cap as usize, sketch, top_k as usize);
    std::fs::create_dir_all(&dir).expect("create trace directory");

    // Each job writes its own capture file *before* the outcome is
    // journaled, so a resumed run either reuses a file that is already
    // on disk or rewrites it with identical bytes — never neither.
    let catalog: Vec<(String, SharedJob<RunArtifacts>)> = run_all_experiments_obs(seed, obs)
        .into_iter()
        .map(|t| {
            let (id, job) = t.into_job();
            // Capture files carry the experiment identity digest (the
            // same ExperimentKey discipline the journal and the result
            // server use), so captures from different seeds can coexist
            // and artifacts are joinable by key across subsystems.
            let key = ExperimentKey::from_id(&id, seed);
            let file: PathBuf =
                Path::new(&dir).join(format!("{}-{}.trace", sanitize(&id), key.hex()));
            let name = id.clone();
            let wrapped: SharedJob<RunArtifacts> = Arc::new(move || {
                let out = job();
                let cap = flight::decode(&out.capture).expect("own capture decodes");
                assert_eq!(
                    cap.encode(),
                    out.capture,
                    "{name}: capture round-trip must be bit-exact"
                );
                std::fs::write(&file, &out.capture).expect("write capture");
                let mut j = Json::obj();
                j.set("name", Json::Str(name.clone()));
                j.set("file", Json::Str(file.display().to_string()));
                j.set("bytes", Json::UInt(out.capture.len() as u64));
                j.set("events", Json::UInt(cap.events.len() as u64));
                j.set("recorded", Json::UInt(cap.recorded));
                j.set("overwritten", Json::UInt(cap.overwritten));
                j.set("digest", Json::UInt(flight::digest(&out.capture)));
                j.set("heatmap", out.heatmap.clone());
                RunArtifacts {
                    csv: String::new(),
                    json: j,
                }
            });
            (id, wrapped)
        })
        .collect();

    let journal_path = Path::new(&dir).join("journal.jsonl");
    let outcomes = match journal::run_resumable(
        catalog,
        seed,
        jobs,
        &opts,
        &journal_path,
        resume,
        &|a: &RunArtifacts| a.clone(),
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: journal I/O failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Assemble the two documents in catalog order. Neither contains a
    // wall-clock time, so bytes match at any jobs= value.
    let mut entries = Vec::new();
    let mut heatmaps = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut artifact_paths: Vec<String> = Vec::new();
    for (id, outcome) in &outcomes {
        match outcome {
            Ok(a) => {
                // Rebuild the entry without its heatmap (heatmaps get
                // their own document; `Json::set` appends, so stripping
                // a field means copying the ones we keep).
                let mut entry = Json::obj();
                for key in [
                    "name",
                    "file",
                    "bytes",
                    "events",
                    "recorded",
                    "overwritten",
                    "digest",
                ] {
                    if let Some(v) = a.json.get(key) {
                        entry.set(key, v.clone());
                    }
                }
                let heat = a.json.get("heatmap").cloned().unwrap_or(Json::Null);
                entries.push(entry);
                let mut h = Json::obj();
                h.set("name", Json::Str(id.clone()));
                h.set("heatmap", heat);
                heatmaps.push(h);
                if let Some(f) = a.json.get("file").and_then(Json::as_str) {
                    artifact_paths.push(f.to_string());
                }
            }
            Err(e) => failures.push((id.clone(), e.clone())),
        }
    }

    let mut summary = Json::obj();
    summary.set("schema", Json::Str(SUMMARY_SCHEMA.into()));
    summary.set("seed", Json::UInt(seed));
    summary.set("flight_capacity", Json::UInt(flight_cap));
    let mut sk = Json::obj();
    sk.set("width_log2", Json::UInt(sketch.width_log2 as u64));
    sk.set("depth", Json::UInt(sketch.depth as u64));
    sk.set("candidates", Json::UInt(sketch.candidates as u64));
    sk.set("epoch_ops", Json::UInt(sketch.epoch_ops));
    summary.set("sketch", sk);
    summary.set("top_k", Json::UInt(top_k));
    summary.set("captures", Json::Arr(entries));
    summary.set(
        "failed",
        Json::Arr(
            failures
                .iter()
                .map(|(id, e)| {
                    let mut f = Json::obj();
                    f.set("name", Json::Str(id.clone()));
                    f.set("error", Json::Str(e.clone()));
                    f
                })
                .collect(),
        ),
    );
    let summary_path = Path::new(&dir).join("summary.json");
    std::fs::write(&summary_path, format!("{summary:#}\n")).expect("write summary");

    let mut heat_doc = Json::obj();
    heat_doc.set("schema", Json::Str(HEATMAPS_SCHEMA.into()));
    heat_doc.set("seed", Json::UInt(seed));
    heat_doc.set("experiments", Json::Arr(heatmaps));
    let heatmap_path = Path::new(&dir).join("heatmap.json");
    std::fs::write(&heatmap_path, format!("{heat_doc:#}\n")).expect("write heatmap");

    println!(
        "recorded {} of {} captures to {dir} (seed={seed:#x}, flight={flight_cap}, {jobs} jobs)",
        outcomes.len() - failures.len(),
        outcomes.len(),
    );
    let mut all: Vec<&str> = artifact_paths.iter().map(String::as_str).collect();
    let summary_s = summary_path.display().to_string();
    let heatmap_s = heatmap_path.display().to_string();
    let journal_s = journal_path.display().to_string();
    all.push(&summary_s);
    all.push(&heatmap_s);
    all.push(&journal_s);
    impulse_bench::print_artifacts(&all);

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (id, e) in &failures {
            eprintln!("FAILED: {id}: {e}");
        }
        eprintln!(
            "{} of {} experiments failed (rerun with --resume)",
            failures.len(),
            outcomes.len()
        );
        ExitCode::FAILURE
    }
}

/// Runs catalog experiments through record → codec → batched replay and
/// verifies each replayed report byte-identical to its execution. This
/// is the interactive form of the `tests/replay_equiv.rs` contract,
/// with per-phase timings on display.
fn cmd_replay(args: &[String]) -> ExitCode {
    let arg = |prefix: &str| -> Option<String> {
        args.iter()
            .find_map(|a| a.strip_prefix(prefix).map(String::from))
    };
    let needle = arg("match=").unwrap_or_default();
    let save = arg("save=");
    let seed = match runner::u64_from_args(args, "seed", DEFAULT_SEED) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(dir) = &save {
        std::fs::create_dir_all(dir).expect("create save directory");
    }

    let entries: Vec<_> = catalog_entries(seed)
        .into_iter()
        .filter(|e| e.name().contains(&needle))
        .collect();
    if entries.is_empty() {
        eprintln!("error: no catalog entry matches `{needle}`");
        return ExitCode::FAILURE;
    }

    println!(
        "{:<26} {:>10} {:>8} {:>9} {:>9} {:>8} {:>8} {:>8}  status",
        "experiment", "raw ops", "folded", "fast", "fallback", "exec ms", "eval ms", "ratio"
    );
    let (mut exec_sum, mut eval_sum) = (0u64, 0u64);
    let (mut replayed, mut skipped, mut failed) = (0u64, 0u64, 0u64);
    for entry in &entries {
        let run = replay_mode::replay_entry(entry);
        let status = if run.replayed {
            replayed += 1;
            exec_sum += run.execute_wall_ns;
            eval_sum += run.eval_wall_ns;
            "ok".to_string()
        } else if let Some(why) = &run.fallback_reason {
            // Capture refusals (fault schedules) are expected; anything
            // after a successful capture is a real failure.
            if why.starts_with("capture") || why.starts_with("unreplayable") {
                skipped += 1;
                format!("skipped: {why}")
            } else {
                failed += 1;
                format!("FAILED: {why}")
            }
        } else {
            failed += 1;
            "FAILED: no reason recorded".to_string()
        };
        let ratio = if run.eval_wall_ns > 0 {
            format!(
                "{:.2}x",
                run.execute_wall_ns as f64 / run.eval_wall_ns as f64
            )
        } else {
            "-".to_string()
        };
        println!(
            "{:<26} {:>10} {:>8} {:>9} {:>9} {:>8.1} {:>8.1} {:>8}  {}",
            entry.name(),
            run.raw_ops,
            run.folded_ops,
            run.fast_ops,
            run.fallback_ops,
            run.execute_wall_ns as f64 / 1e6,
            run.eval_wall_ns as f64 / 1e6,
            ratio,
            status
        );
        if let Some(dir) = &save {
            // Re-record to get the encoded bytes (replay_entry keeps only
            // the evaluation telemetry, not the capture itself).
            let cfg = entry.config().clone();
            if impulse_sim::replayable(&cfg) {
                let mut m = impulse_sim::Machine::new(&cfg);
                m.start_recording(&cfg);
                entry.drive(&mut m);
                if let Some(Ok(cap)) = m.take_recording() {
                    let file = Path::new(dir).join(format!("{}.replay", sanitize(entry.name())));
                    std::fs::write(&file, cap.encode()).expect("write replay capture");
                }
            }
        }
    }
    println!(
        "\n{replayed} replayed, {skipped} skipped, {failed} failed of {} \
         (execute sum {:.1} ms, eval sum {:.1} ms, ratio {:.2}x)",
        entries.len(),
        exec_sum as f64 / 1e6,
        eval_sum as f64 / 1e6,
        if eval_sum > 0 {
            exec_sum as f64 / eval_sum as f64
        } else {
            0.0
        },
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_dump(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.contains('=')) else {
        eprintln!("error: dump needs a capture file\n{USAGE}");
        return ExitCode::from(2);
    };
    let limit = args
        .iter()
        .find_map(|a| a.strip_prefix("limit="))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32);
    let cap = match load_capture(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bytes = std::fs::read(path).expect("file read once already");
    println!("capture {path}");
    println!(
        "  geometry: line={} B, banks={}, row={} B",
        cap.geom.line_bytes, cap.geom.banks, cap.geom.row_bytes
    );
    println!(
        "  events: {} held, {} recorded, {} overwritten",
        cap.events.len(),
        cap.recorded,
        cap.overwritten
    );
    println!("  digest: {:#018x}", flight::digest(&bytes));
    println!(
        "\n{:>12}  {:>14}  {:>5}  {:>8}  {:<16}  {:>4}",
        "cycle", "line", "bank", "row", "class", "desc"
    );
    for e in cap.events.iter().take(limit) {
        println!(
            "{:>12}  {:>#14x}  {:>5}  {:>8}  {:<16}  {:>4}",
            e.cycle,
            e.line,
            e.bank,
            e.row,
            e.class.name(),
            e.desc.map_or("-".to_string(), |d| d.to_string()),
        );
    }
    if cap.events.len() > limit {
        println!("... {} more (limit={limit})", cap.events.len() - limit);
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let files: Vec<&String> = args.iter().filter(|a| !a.contains('=')).collect();
    let [a_path, b_path] = files.as_slice() else {
        eprintln!("error: diff needs exactly two capture files\n{USAGE}");
        return ExitCode::from(2);
    };
    let (a, b) = match (load_capture(a_path), load_capture(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut diffs = Vec::new();
    if a.geom != b.geom {
        diffs.push(format!("geometry: {:?} vs {:?}", a.geom, b.geom));
    }
    if (a.recorded, a.overwritten) != (b.recorded, b.overwritten) {
        diffs.push(format!(
            "counters: recorded {} vs {}, overwritten {} vs {}",
            a.recorded, b.recorded, a.overwritten, b.overwritten
        ));
    }
    if let Some(i) = (0..a.events.len().min(b.events.len())).find(|&i| a.events[i] != b.events[i]) {
        diffs.push(format!(
            "first divergent event at index {i}: {:?} vs {:?}",
            a.events[i], b.events[i]
        ));
    } else if a.events.len() != b.events.len() {
        diffs.push(format!(
            "event counts: {} vs {} (shared prefix identical)",
            a.events.len(),
            b.events.len()
        ));
    }
    if diffs.is_empty() {
        println!(
            "identical: {} events, digest {:#018x}",
            a.events.len(),
            flight::digest(&a.encode())
        );
        ExitCode::SUCCESS
    } else {
        println!("captures differ:");
        for d in &diffs {
            println!("  {d}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_top(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.contains('=')) else {
        eprintln!("error: top needs a capture file\n{USAGE}");
        return ExitCode::from(2);
    };
    let k = args
        .iter()
        .find_map(|a| a.strip_prefix("k="))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16);
    let cap = match load_capture(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let top = exact_top(&cap);
    println!(
        "top {} of {} unique lines ({} events held)",
        k.min(top.len()),
        top.len(),
        cap.events.len()
    );
    println!(
        "{:>14}  {:>8}  {:>5}  {:>8}",
        "line", "count", "bank", "row"
    );
    for &(line, count) in top.iter().take(k) {
        println!(
            "{:>#14x}  {:>8}  {:>5}  {:>8}",
            line,
            count,
            cap.geom.bank_of(line),
            cap.geom.row_of(line)
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("dump") => cmd_dump(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
