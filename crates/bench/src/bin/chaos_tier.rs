//! Hybrid-tier chaos suite entry point: runs the DRAM/SCM degradation
//! scenarios, asserts the graceful-degradation invariants, and writes
//! `results/chaos_tier.json` (schema `impulse-tier-chaos-v1`).
//!
//! Usage: `chaos_tier [seed=<N>] [jobs=<N>] [out=<path>]
//! [journal=<path>] [watchdog_ms=<N>] [max_retries=<K>] [--resume]`
//!
//! Cases fan across `jobs=<N>` worker threads; results are gathered in
//! submission order and every scenario draws only from the seed, so the
//! JSON output is byte-identical for a fixed seed at any worker count.
//! Completed cases are journaled (fsync'd) as they finish; after a
//! crash, `--resume` reruns only what is missing and emits the same
//! bytes as an uninterrupted run. Exits nonzero if any invariant was
//! violated or any case failed to run.

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

use impulse_bench::journal::{self, RunArtifacts};
use impulse_bench::runner::CommonArgs;
use impulse_bench::tier_chaos::{tier_chaos_document, tier_chaos_jobs, TierOutcome};

const USAGE: &str = "usage: chaos_tier [seed=N] [jobs=N] [out=results/chaos_tier.json] \
[journal=results/chaos-tier-journal.jsonl] [watchdog_ms=N] [max_retries=K] [--resume]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |prefix: &str, default: &str| -> String {
        args.iter()
            .find_map(|a| a.strip_prefix(prefix).map(String::from))
            .unwrap_or_else(|| default.to_string())
    };
    let path = arg("out=", "results/chaos_tier.json");
    let journal_path = arg("journal=", "results/chaos-tier-journal.jsonl");
    let resume = args.iter().any(|a| a == "--resume");

    let common = match CommonArgs::parse(&args, 1999) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (jobs, seed, opts) = (common.jobs, common.seed, common.supervise);

    let results = match journal::run_resumable(
        tier_chaos_jobs(seed),
        seed,
        jobs,
        &opts,
        Path::new(&journal_path),
        resume,
        &|o: &TierOutcome| RunArtifacts {
            csv: String::new(),
            json: o.to_json(),
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: journal I/O failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Rebuild the outcome list (submission order) from the artifacts;
    // journaled and freshly-run cases are indistinguishable here, which
    // is what keeps resumed chaos_tier.json byte-identical.
    let mut outcomes: Vec<TierOutcome> = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    for (id, res) in &results {
        match res {
            Ok(a) => match TierOutcome::from_json(&a.json) {
                Some(o) => outcomes.push(o),
                None => failures.push((id.clone(), "journaled case failed to decode".into())),
            },
            Err(e) => failures.push((id.clone(), e.clone())),
        }
    }

    println!(
        "{:<26} {:>10} {:>8} {:>6} {:>8} {:>6} {:>8} {:>8}",
        "scenario", "cycles", "accesses", "typed", "retired", "kills", "tagcorr", "eccfix"
    );
    for o in &outcomes {
        println!(
            "{:<26} {:>10} {:>8} {:>6} {:>8} {:>6} {:>8} {:>8}",
            o.scenario,
            o.cycles,
            o.accesses,
            o.typed_faults,
            o.scm.wear_retirements,
            o.fault.channel_kills,
            o.fault.tag_corruptions,
            o.ecc_corrected
        );
    }

    let doc = tier_chaos_document(seed, &outcomes);
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut f = std::fs::File::create(&path).expect("create chaos_tier.json");
    writeln!(f, "{doc:#}").expect("write chaos_tier.json");
    println!("wrote {path} (seed={seed}, {} cases)", outcomes.len());
    impulse_bench::print_artifacts(&[&path, &journal_path]);

    let violations: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.violations.iter().cloned())
        .collect();

    let mut failed = false;
    if !failures.is_empty() {
        failed = true;
        for (id, e) in &failures {
            eprintln!("case failed: {id}: {e}");
        }
    }
    if !violations.is_empty() {
        failed = true;
        for v in &violations {
            eprintln!("invariant violated: {v}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
