//! Design-choice sweeps over the Impulse controller's sizing parameters,
//! using the scatter/gather CG kernel (the workload that stresses every
//! mechanism at once). The paper fixes these by fiat — 256-byte
//! descriptor buffers, a 2 KB prefetch SRAM, eight descriptors, an
//! on-chip PgTbl TLB — so this harness asks how sensitive the headline
//! result is to each.
//!
//! Sweeps: per-descriptor prefetch buffer size, non-shadow prefetch SRAM
//! size, controller TLB entries, DRAM banks, and the DRAM scheduling
//! policy. Overrides: `rows=`, `nnz=`, `seed=`, `jobs=` (worker threads;
//! default all hardware threads, `jobs=1` for the serial path), plus the
//! crash-recovery knobs `journal=`, `timeout_ms=`, `attempts=`, and
//! `--resume`.
//!
//! Every grid point builds its own `Machine`, so the whole grid fans
//! across a job pool; rows are gathered and printed in grid order, making
//! the output identical at any `jobs=` value. Finished points are
//! journaled (fsync'd) as they complete: each sweep row stores its fully
//! rendered table line, each tile-sweep point its raw cycle count (the
//! tile lines need cross-point math), so `--resume` after a crash reruns
//! only the missing points and prints identical tables.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use impulse_bench::journal::{self, RunArtifacts};
use impulse_bench::runner::{SharedJob, SuperviseOpts};
use impulse_bench::Args;
use impulse_dram::SchedulePolicy;
use impulse_obs::Json;
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_workloads::{Mmp, MmpParams, MmpVariant, Smvp, SmvpVariant, SparsePattern};

const USAGE: &str = "usage: sweep [--paper] [rows=N] [nnz=N] [seed=N] [jobs=N] \
[journal=results/sweep-journal.jsonl] [timeout_ms=N] [attempts=K] [--resume]";

fn run(cfg: &SystemConfig, pattern: &Arc<SparsePattern>) -> Report {
    let mut m = Machine::new(cfg);
    let w = Smvp::setup(&mut m, pattern.clone(), SmvpVariant::ScatterGather).expect("setup");
    w.run(&mut m, 1);
    m.report("sweep")
}

fn header(title: &str) {
    println!("\n--- {title} ---");
    println!(
        "{:<22}{:>14}{:>12}{:>14}",
        "setting", "cycles", "avg load", "desc buf hits"
    );
}

/// One fully rendered sweep-table line — exactly what the journal stores,
/// so resumed output is byte-identical (no float re-rounding).
fn render_row(label: &str, r: &Report) -> String {
    format!(
        "{:<22}{:>14}{:>12.2}{:>14}",
        label,
        r.cycles,
        r.mem.avg_load_time(),
        r.desc.buffer_hits
    )
}

fn main() -> ExitCode {
    let args = Args::parse();
    let rows = args.get("rows", 14_000);
    let nnz = args.get("nnz", if args.paper { 156 } else { 24 });
    let seed = args.get("seed", 0x5eed);
    let jobs = match args.jobs() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let timeout_ms = args.get("timeout_ms", 0);
    let attempts = args.get("attempts", 2);
    let journal_path = args
        .journal
        .clone()
        .unwrap_or_else(|| "results/sweep-journal.jsonl".to_string());
    let opts = SuperviseOpts {
        timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        max_attempts: attempts.clamp(1, u64::from(u32::MAX)) as u32,
    };
    let pattern = Arc::new(SparsePattern::generate(rows, nnz, seed));

    println!("================================================================");
    println!(
        "Impulse design-choice sweeps — scatter/gather CG, n={rows}, nnz={}",
        pattern.nnz()
    );
    println!("(controller prefetch on; each sweep varies one parameter)");
    println!("================================================================");

    let base = SystemConfig::paint().with_prefetch(true, false);

    // The whole grid, as (section title, rows of (label, config)). Each
    // point is an independent simulation; the pool runs them all and the
    // printout below walks the grid in order.
    let mut sections: Vec<(&str, Vec<(String, SystemConfig)>)> = Vec::new();

    sections.push((
        "per-descriptor prefetch buffer (paper: 256 B)",
        [128u64, 256, 512, 1024]
            .iter()
            .map(|&bytes| {
                let mut cfg = base.clone();
                cfg.mc.desc_buffer_bytes = bytes;
                (format!("{bytes} B"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "non-shadow prefetch SRAM (paper: 2 KB)",
        [512u64, 2048, 8192]
            .iter()
            .map(|&bytes| {
                let mut cfg = base.clone();
                cfg.mc.prefetch_sram_bytes = bytes;
                (format!("{bytes} B"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "controller PgTbl TLB entries (ours: 64)",
        [8usize, 16, 64, 256]
            .iter()
            .map(|&entries| {
                let mut cfg = base.clone();
                cfg.mc.pgtbl.tlb_entries = entries;
                (format!("{entries} entries"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "DRAM banks (ours: 16)",
        [4u64, 8, 16, 32]
            .iter()
            .map(|&banks| {
                let mut cfg = base.clone();
                cfg.dram.banks = banks;
                (format!("{banks} banks"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "outstanding load misses (MSHRs; Paint's L1 was non-blocking)",
        [1usize, 2, 4, 8]
            .iter()
            .map(|&mshr| (format!("{mshr} outstanding"), base.clone().with_mshr(mshr)))
            .collect(),
    ));

    sections.push((
        "DRAM scheduling policy (paper's results: in-order)",
        SchedulePolicy::ALL
            .iter()
            .map(|&policy| {
                let mut cfg = base.clone();
                cfg.mc.sched = policy;
                (policy.name().to_string(), cfg)
            })
            .collect(),
    ));

    // One catalog for the whole binary: the sweep grid followed by the
    // tile-size points, each under a stable journal id.
    let mut catalog: Vec<(String, SharedJob<RunArtifacts>)> = Vec::new();
    for (si, (_, rows)) in sections.iter().enumerate() {
        for (label, cfg) in rows {
            let id = format!("sweep/{si}/{label}");
            let cfg = cfg.clone();
            let pattern = pattern.clone();
            let label = label.clone();
            catalog.push((
                id,
                Arc::new(move || {
                    let r = run(&cfg, &pattern);
                    RunArtifacts {
                        csv: render_row(&label, &r),
                        json: Json::Null,
                    }
                }),
            ));
        }
    }
    let tiles = [16u64, 32, 64];
    for &tile in &tiles {
        for &variant in MmpVariant::ALL.iter() {
            let id = format!("mmp/{tile}/{}", variant.name());
            catalog.push((
                id,
                Arc::new(move || {
                    let n = 256;
                    let mut m = Machine::new(&SystemConfig::paint());
                    let mut w = Mmp::setup(&mut m, MmpParams { n, tile }, variant).expect("mmp");
                    w.run(&mut m).expect("mmp run");
                    let mut j = Json::obj();
                    j.set("cycles", Json::UInt(m.report("t").cycles));
                    RunArtifacts {
                        csv: String::new(),
                        json: j,
                    }
                }),
            ));
        }
    }
    let grid_points: usize = sections.iter().map(|(_, rows)| rows.len()).sum();

    let results = match journal::run_resumable(
        catalog,
        seed,
        jobs,
        &opts,
        Path::new(&journal_path),
        args.resume,
        &|a: &RunArtifacts| a.clone(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: journal I/O failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut outcomes = results.iter();

    for (title, rows) in &sections {
        header(title);
        for (label, _) in rows {
            let (id, outcome) = outcomes.next().expect("one outcome per grid point");
            match outcome {
                Ok(a) => println!("{}", a.csv),
                Err(e) => {
                    println!("{label:<22}  [FAILED]");
                    failures.push((id.clone(), e.clone()));
                }
            }
        }
    }

    // Section 4.2's forward-looking claim: "as caches (and therefore
    // tiles) grow larger, the cost of copying grows, whereas the cost of
    // tile remapping does not." Sweep the tile size and compare the
    // *overhead* each scheme pays on top of the compute-identical
    // conventional load stream.
    println!(
        "
--- tile size vs copy/remap overhead (paper §4.2 claim) ---"
    );
    println!(
        "{:<12}{:>16}{:>18}{:>18}",
        "tile", "conv (Mcyc)", "copy ovh (Mcyc)", "remap ovh (Mcyc)"
    );
    let mmp_outcomes = &results[grid_points..];
    for (t, &tile) in tiles.iter().enumerate() {
        let per_tile = &mmp_outcomes[t * MmpVariant::ALL.len()..(t + 1) * MmpVariant::ALL.len()];
        let cycles: Option<Vec<u64>> = per_tile
            .iter()
            .map(|(_, o)| {
                o.as_ref()
                    .ok()
                    .and_then(|a| a.json.get("cycles"))
                    .and_then(Json::as_u64)
            })
            .collect();
        for (id, o) in per_tile {
            if let Err(e) = o {
                failures.push((id.clone(), e.clone()));
            }
        }
        let Some(cycles) = cycles else {
            println!("{:<12}  [FAILED]", format!("{tile}x{tile}"));
            continue;
        };
        // Overhead = extra instructions + syscalls relative to the pure
        // kernel, measured as time above the (fast, conflict-free) remap
        // compute floor. Copy overhead grows with tile²; remap overhead
        // is flat per-tile.
        let floor = cycles[2].min(cycles[1]);
        println!(
            "{:<12}{:>16.2}{:>18.2}{:>18.2}",
            format!("{tile}x{tile}"),
            cycles[0] as f64 / 1e6,
            (cycles[1].saturating_sub(floor)) as f64 / 1e6,
            (cycles[2].saturating_sub(floor)) as f64 / 1e6,
        );
    }
    println!();
    impulse_bench::print_artifacts(&[&journal_path]);

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} grid point(s) failed:", failures.len());
        for (id, e) in &failures {
            eprintln!("  {id}: {e}");
        }
        eprintln!("(recorded in {journal_path}; rerun with --resume)");
        ExitCode::FAILURE
    }
}
