//! Design-choice sweeps over the Impulse controller's sizing parameters,
//! using the scatter/gather CG kernel (the workload that stresses every
//! mechanism at once). The paper fixes these by fiat — 256-byte
//! descriptor buffers, a 2 KB prefetch SRAM, eight descriptors, an
//! on-chip PgTbl TLB — so this harness asks how sensitive the headline
//! result is to each.
//!
//! Sweeps: per-descriptor prefetch buffer size, non-shadow prefetch SRAM
//! size, controller TLB entries, DRAM banks, and the DRAM scheduling
//! policy. Overrides: `rows=`, `nnz=`, `seed=`, `jobs=` (worker threads;
//! default all hardware threads, `jobs=1` for the serial path).
//!
//! Every grid point builds its own `Machine`, so the whole grid fans
//! across a job pool; rows are gathered and printed in grid order, making
//! the output identical at any `jobs=` value.

use std::sync::Arc;

use impulse_bench::{runner, Args};
use impulse_dram::SchedulePolicy;
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_workloads::{Mmp, MmpParams, MmpVariant, Smvp, SmvpVariant, SparsePattern};

fn run(cfg: &SystemConfig, pattern: &Arc<SparsePattern>) -> Report {
    let mut m = Machine::new(cfg);
    let w = Smvp::setup(&mut m, pattern.clone(), SmvpVariant::ScatterGather).expect("setup");
    w.run(&mut m, 1);
    m.report("sweep")
}

fn header(title: &str) {
    println!("\n--- {title} ---");
    println!(
        "{:<22}{:>14}{:>12}{:>14}",
        "setting", "cycles", "avg load", "desc buf hits"
    );
}

fn row(label: &str, r: &Report) {
    println!(
        "{:<22}{:>14}{:>12.2}{:>14}",
        label,
        r.cycles,
        r.mem.avg_load_time(),
        r.desc.buffer_hits
    );
}

fn main() {
    let args = Args::parse();
    let rows = args.get("rows", 14_000);
    let nnz = args.get("nnz", if args.paper { 156 } else { 24 });
    let seed = args.get("seed", 0x5eed);
    let jobs = args.get("jobs", runner::default_jobs() as u64).max(1) as usize;
    let pattern = Arc::new(SparsePattern::generate(rows, nnz, seed));

    println!("================================================================");
    println!(
        "Impulse design-choice sweeps — scatter/gather CG, n={rows}, nnz={}",
        pattern.nnz()
    );
    println!("(controller prefetch on; each sweep varies one parameter)");
    println!("================================================================");

    let base = SystemConfig::paint().with_prefetch(true, false);

    // The whole grid, as (section title, rows of (label, config)). Each
    // point is an independent simulation; the pool runs them all and the
    // printout below walks the grid in order.
    let mut sections: Vec<(&str, Vec<(String, SystemConfig)>)> = Vec::new();

    sections.push((
        "per-descriptor prefetch buffer (paper: 256 B)",
        [128u64, 256, 512, 1024]
            .iter()
            .map(|&bytes| {
                let mut cfg = base.clone();
                cfg.mc.desc_buffer_bytes = bytes;
                (format!("{bytes} B"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "non-shadow prefetch SRAM (paper: 2 KB)",
        [512u64, 2048, 8192]
            .iter()
            .map(|&bytes| {
                let mut cfg = base.clone();
                cfg.mc.prefetch_sram_bytes = bytes;
                (format!("{bytes} B"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "controller PgTbl TLB entries (ours: 64)",
        [8usize, 16, 64, 256]
            .iter()
            .map(|&entries| {
                let mut cfg = base.clone();
                cfg.mc.pgtbl.tlb_entries = entries;
                (format!("{entries} entries"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "DRAM banks (ours: 16)",
        [4u64, 8, 16, 32]
            .iter()
            .map(|&banks| {
                let mut cfg = base.clone();
                cfg.dram.banks = banks;
                (format!("{banks} banks"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "outstanding load misses (MSHRs; Paint's L1 was non-blocking)",
        [1usize, 2, 4, 8]
            .iter()
            .map(|&mshr| (format!("{mshr} outstanding"), base.clone().with_mshr(mshr)))
            .collect(),
    ));

    sections.push((
        "DRAM scheduling policy (paper's results: in-order)",
        SchedulePolicy::ALL
            .iter()
            .map(|&policy| {
                let mut cfg = base.clone();
                cfg.mc.sched = policy;
                (policy.name().to_string(), cfg)
            })
            .collect(),
    ));

    let grid_jobs: Vec<_> = sections
        .iter()
        .flat_map(|(_, rows)| rows.iter())
        .map(|(_, cfg)| {
            let cfg = cfg.clone();
            let pattern = pattern.clone();
            move || run(&cfg, &pattern)
        })
        .collect();
    let mut reports = runner::run_ordered(grid_jobs, jobs).into_iter();

    for (title, rows) in &sections {
        header(title);
        for (label, _) in rows {
            row(label, &reports.next().expect("one report per grid point"));
        }
    }

    // Section 4.2's forward-looking claim: "as caches (and therefore
    // tiles) grow larger, the cost of copying grows, whereas the cost of
    // tile remapping does not." Sweep the tile size and compare the
    // *overhead* each scheme pays on top of the compute-identical
    // conventional load stream.
    println!(
        "
--- tile size vs copy/remap overhead (paper §4.2 claim) ---"
    );
    println!(
        "{:<12}{:>16}{:>18}{:>18}",
        "tile", "conv (Mcyc)", "copy ovh (Mcyc)", "remap ovh (Mcyc)"
    );
    let tiles = [16u64, 32, 64];
    let mmp_jobs: Vec<_> = tiles
        .iter()
        .flat_map(|&tile| MmpVariant::ALL.iter().map(move |&variant| (tile, variant)))
        .map(|(tile, variant)| {
            move || {
                let n = 256;
                let mut m = Machine::new(&SystemConfig::paint());
                let mut w = Mmp::setup(&mut m, MmpParams { n, tile }, variant).expect("mmp");
                w.run(&mut m).expect("mmp run");
                m.report("t").cycles
            }
        })
        .collect();
    let mmp_cycles = runner::run_ordered(mmp_jobs, jobs);
    for (t, &tile) in tiles.iter().enumerate() {
        let cycles = &mmp_cycles[t * MmpVariant::ALL.len()..(t + 1) * MmpVariant::ALL.len()];
        // Overhead = extra instructions + syscalls relative to the pure
        // kernel, measured as time above the (fast, conflict-free) remap
        // compute floor. Copy overhead grows with tile²; remap overhead
        // is flat per-tile.
        let floor = cycles[2].min(cycles[1]);
        println!(
            "{:<12}{:>16.2}{:>18.2}{:>18.2}",
            format!("{tile}x{tile}"),
            cycles[0] as f64 / 1e6,
            (cycles[1].saturating_sub(floor)) as f64 / 1e6,
            (cycles[2].saturating_sub(floor)) as f64 / 1e6,
        );
    }
    println!();
}
