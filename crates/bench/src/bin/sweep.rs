//! Design-choice sweeps over the Impulse controller's sizing parameters,
//! using the scatter/gather CG kernel (the workload that stresses every
//! mechanism at once). The paper fixes these by fiat — 256-byte
//! descriptor buffers, a 2 KB prefetch SRAM, eight descriptors, an
//! on-chip PgTbl TLB — so this harness asks how sensitive the headline
//! result is to each.
//!
//! Sweeps: per-descriptor prefetch buffer size, non-shadow prefetch SRAM
//! size, controller TLB entries, DRAM banks, the DRAM scheduling policy,
//! and the hybrid memory tier (none / flat / DRAM-cache-over-SCM; tier
//! points always execute — tier state is execution-ordered, so the
//! replay backend refuses them and the harness falls back). Overrides: `rows=`, `nnz=`, `seed=`, `jobs=` (worker threads;
//! default all hardware threads, `jobs=1` for the serial path), plus the
//! crash-recovery knobs `journal=`, `timeout_ms=`, `attempts=`, and
//! `--resume`.
//!
//! `mode=replay` is the capture-once-replay-many path: the scatter/gather
//! workload is recorded a single time under the base configuration, and
//! every sweep grid point is then evaluated from that one capture through
//! the batched replay backend — the capture cost amortizes across the
//! whole grid instead of re-executing the workload per point. Any point
//! whose replay refuses (e.g. a config the capture cannot be evaluated
//! under) silently falls back to direct execution, so the rendered tables
//! are identical in either mode. The MMP tile points always execute: each
//! variant is a different instruction stream, so there is nothing to
//! share.
//!
//! Every grid point builds its own `Machine`, so the whole grid fans
//! across a job pool; rows are gathered and printed in grid order, making
//! the output identical at any `jobs=` value. Finished points are
//! journaled (fsync'd) as they complete: each sweep row stores its fully
//! rendered table line, each tile-sweep point its raw cycle count (the
//! tile lines need cross-point math), so `--resume` after a crash reruns
//! only the missing points and prints identical tables.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use impulse_bench::journal::{self, RunArtifacts};
use impulse_bench::replay_mode;
use impulse_bench::runner::{SharedJob, SuperviseOpts};
use impulse_bench::Args;
use impulse_dram::SchedulePolicy;
use impulse_obs::Json;
use impulse_sim::{Machine, ReplayCapture, Report, SystemConfig};
use impulse_types::TierPolicy;
use impulse_workloads::{Mmp, MmpParams, MmpVariant, Smvp, SmvpVariant, SparsePattern};

const USAGE: &str = "usage: sweep [--paper] [mode=execute|replay] [rows=N] [nnz=N] \
[seed=N] [jobs=N] [journal=results/sweep-journal.jsonl] [timeout_ms=N] [attempts=K] \
[--resume]";

fn run(cfg: &SystemConfig, pattern: &Arc<SparsePattern>) -> Report {
    let mut m = Machine::new(cfg);
    let w = Smvp::setup(&mut m, pattern.clone(), SmvpVariant::ScatterGather).expect("setup");
    w.run(&mut m, 1);
    m.report("sweep")
}

fn header(title: &str) {
    println!("\n--- {title} ---");
    println!(
        "{:<22}{:>14}{:>12}{:>14}",
        "setting", "cycles", "avg load", "desc buf hits"
    );
}

/// One fully rendered sweep-table line — exactly what the journal stores,
/// so resumed output is byte-identical (no float re-rounding).
fn render_row(label: &str, r: &Report) -> String {
    format!(
        "{:<22}{:>14}{:>12.2}{:>14}",
        label,
        r.cycles,
        r.mem.avg_load_time(),
        r.desc.buffer_hits
    )
}

fn main() -> ExitCode {
    let args = Args::parse();
    let rows = args.get("rows", 14_000);
    let nnz = args.get("nnz", if args.paper { 156 } else { 24 });
    let seed = args.get("seed", 0x5eed);
    let jobs = match args.jobs() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let timeout_ms = args.get("timeout_ms", 0);
    let attempts = args.get("attempts", 2);
    let mode = args.mode.clone().unwrap_or_else(|| "execute".to_string());
    let replay = match mode.as_str() {
        "execute" => false,
        "replay" => true,
        other => {
            eprintln!("error: unknown mode `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Replay runs journal separately so an execute-mode `--resume` never
    // reuses (or is poisoned by) replay-mode state, and vice versa.
    let journal_default = if replay {
        "results/sweep-journal-replay.jsonl"
    } else {
        "results/sweep-journal.jsonl"
    };
    let journal_path = args
        .journal
        .clone()
        .unwrap_or_else(|| journal_default.to_string());
    let opts = SuperviseOpts {
        timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        max_attempts: attempts.clamp(1, u64::from(u32::MAX)) as u32,
    };
    let pattern = Arc::new(SparsePattern::generate(rows, nnz, seed));

    println!("================================================================");
    println!(
        "Impulse design-choice sweeps — scatter/gather CG, n={rows}, nnz={}",
        pattern.nnz()
    );
    println!("(controller prefetch on; each sweep varies one parameter)");
    println!("================================================================");

    let base = SystemConfig::paint().with_prefetch(true, false);

    // mode=replay: record the workload once under the base config. Every
    // grid point below then replays this single capture under its own
    // candidate configuration — the point of the replay backend is that
    // the (expensive) execution is paid once and the (cheap) timing
    // evaluation is paid per point.
    let shared_cap: Option<(Arc<ReplayCapture>, u64)> = if replay {
        match replay_mode::capture_shared(&base, |m| {
            let w = Smvp::setup(m, pattern.clone(), SmvpVariant::ScatterGather).expect("setup");
            w.run(m, 1);
        }) {
            Ok(v) => Some(v),
            Err(why) => {
                eprintln!("note: replay capture unavailable ({why}); executing all points");
                None
            }
        }
    } else {
        None
    };

    // The whole grid, as (section title, rows of (label, config)). Each
    // point is an independent simulation; the pool runs them all and the
    // printout below walks the grid in order.
    let mut sections: Vec<(&str, Vec<(String, SystemConfig)>)> = Vec::new();

    sections.push((
        "per-descriptor prefetch buffer (paper: 256 B)",
        [128u64, 256, 512, 1024]
            .iter()
            .map(|&bytes| {
                let mut cfg = base.clone();
                cfg.mc.desc_buffer_bytes = bytes;
                (format!("{bytes} B"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "non-shadow prefetch SRAM (paper: 2 KB)",
        [512u64, 2048, 8192]
            .iter()
            .map(|&bytes| {
                let mut cfg = base.clone();
                cfg.mc.prefetch_sram_bytes = bytes;
                (format!("{bytes} B"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "controller PgTbl TLB entries (ours: 64)",
        [8usize, 16, 64, 256]
            .iter()
            .map(|&entries| {
                let mut cfg = base.clone();
                cfg.mc.pgtbl.tlb_entries = entries;
                (format!("{entries} entries"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "DRAM banks (ours: 16)",
        [4u64, 8, 16, 32]
            .iter()
            .map(|&banks| {
                let mut cfg = base.clone();
                cfg.dram.banks = banks;
                (format!("{banks} banks"), cfg)
            })
            .collect(),
    ));

    sections.push((
        "outstanding load misses (MSHRs; Paint's L1 was non-blocking)",
        [1usize, 2, 4, 8]
            .iter()
            .map(|&mshr| (format!("{mshr} outstanding"), base.clone().with_mshr(mshr)))
            .collect(),
    ));

    sections.push((
        "DRAM scheduling policy (paper's results: in-order)",
        SchedulePolicy::ALL
            .iter()
            .map(|&policy| {
                let mut cfg = base.clone();
                cfg.mc.sched = policy;
                (policy.name().to_string(), cfg)
            })
            .collect(),
    ));

    sections.push((
        "hybrid memory tier (none / flat partition / DRAM cache over SCM)",
        TierPolicy::ALL
            .iter()
            .map(|&policy| (policy.name().to_string(), base.clone().with_tier(policy)))
            .collect(),
    ));

    // One catalog for the whole binary: the sweep grid followed by the
    // tile-size points, each under a stable journal id.
    let mut catalog: Vec<(String, SharedJob<RunArtifacts>)> = Vec::new();
    for (si, (_, rows)) in sections.iter().enumerate() {
        for (label, cfg) in rows {
            let id = format!("sweep/{si}/{label}");
            let cfg = cfg.clone();
            let pattern = pattern.clone();
            let label = label.clone();
            let cap = shared_cap.as_ref().map(|(c, _)| c.clone());
            catalog.push((
                id,
                Arc::new(move || {
                    // Replay the shared capture under this point's config;
                    // fall back to direct execution if the replay refuses,
                    // so the rendered row is produced either way.
                    let (r, replayed, eval_ns) = match &cap {
                        Some(cap) => {
                            let t = Instant::now();
                            match replay_mode::eval_capture(&cfg, cap, "sweep") {
                                Ok((r, _)) => (r, true, t.elapsed().as_nanos() as u64),
                                Err(_) => (run(&cfg, &pattern), false, 0),
                            }
                        }
                        None => (run(&cfg, &pattern), false, 0),
                    };
                    let mut j = Json::obj();
                    j.set("replayed", Json::Bool(replayed));
                    j.set("eval_ns", Json::UInt(eval_ns));
                    RunArtifacts {
                        csv: render_row(&label, &r),
                        json: j,
                    }
                }),
            ));
        }
    }
    let tiles = [16u64, 32, 64];
    for &tile in &tiles {
        for &variant in MmpVariant::ALL.iter() {
            let id = format!("mmp/{tile}/{}", variant.name());
            catalog.push((
                id,
                Arc::new(move || {
                    let n = 256;
                    let mut m = Machine::new(&SystemConfig::paint());
                    let mut w = Mmp::setup(&mut m, MmpParams { n, tile }, variant).expect("mmp");
                    w.run(&mut m).expect("mmp run");
                    let mut j = Json::obj();
                    j.set("cycles", Json::UInt(m.report("t").cycles));
                    RunArtifacts {
                        csv: String::new(),
                        json: j,
                    }
                }),
            ));
        }
    }
    let grid_points: usize = sections.iter().map(|(_, rows)| rows.len()).sum();

    let results = match journal::run_resumable(
        catalog,
        seed,
        jobs,
        &opts,
        Path::new(&journal_path),
        args.resume,
        &|a: &RunArtifacts| a.clone(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: journal I/O failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut outcomes = results.iter();

    for (title, rows) in &sections {
        header(title);
        for (label, _) in rows {
            let (id, outcome) = outcomes.next().expect("one outcome per grid point");
            match outcome {
                Ok(a) => println!("{}", a.csv),
                Err(e) => {
                    println!("{label:<22}  [FAILED]");
                    failures.push((id.clone(), e.clone()));
                }
            }
        }
    }

    // The amortization record for the ≥10× replay claim: one capture
    // (full execution + recording) serving the whole grid, vs one full
    // execution per point in mode=execute.
    if let Some((_, capture_ns)) = &shared_cap {
        let (mut replayed_points, mut eval_sum_ns) = (0u64, 0u64);
        for (_, o) in &results[..grid_points] {
            if let Ok(a) = o {
                if a.json.get("replayed").and_then(Json::as_bool) == Some(true) {
                    replayed_points += 1;
                    eval_sum_ns += a.json.get("eval_ns").and_then(Json::as_u64).unwrap_or(0);
                }
            }
        }
        println!(
            "\nreplay: {replayed_points}/{grid_points} grid points evaluated from one \
             capture (capture {:.1} ms, eval sum {:.1} ms)",
            *capture_ns as f64 / 1e6,
            eval_sum_ns as f64 / 1e6,
        );
    }

    // Section 4.2's forward-looking claim: "as caches (and therefore
    // tiles) grow larger, the cost of copying grows, whereas the cost of
    // tile remapping does not." Sweep the tile size and compare the
    // *overhead* each scheme pays on top of the compute-identical
    // conventional load stream.
    println!(
        "
--- tile size vs copy/remap overhead (paper §4.2 claim) ---"
    );
    println!(
        "{:<12}{:>16}{:>18}{:>18}",
        "tile", "conv (Mcyc)", "copy ovh (Mcyc)", "remap ovh (Mcyc)"
    );
    let mmp_outcomes = &results[grid_points..];
    for (t, &tile) in tiles.iter().enumerate() {
        let per_tile = &mmp_outcomes[t * MmpVariant::ALL.len()..(t + 1) * MmpVariant::ALL.len()];
        let cycles: Option<Vec<u64>> = per_tile
            .iter()
            .map(|(_, o)| {
                o.as_ref()
                    .ok()
                    .and_then(|a| a.json.get("cycles"))
                    .and_then(Json::as_u64)
            })
            .collect();
        for (id, o) in per_tile {
            if let Err(e) = o {
                failures.push((id.clone(), e.clone()));
            }
        }
        let Some(cycles) = cycles else {
            println!("{:<12}  [FAILED]", format!("{tile}x{tile}"));
            continue;
        };
        // Overhead = extra instructions + syscalls relative to the pure
        // kernel, measured as time above the (fast, conflict-free) remap
        // compute floor. Copy overhead grows with tile²; remap overhead
        // is flat per-tile.
        let floor = cycles[2].min(cycles[1]);
        println!(
            "{:<12}{:>16.2}{:>18.2}{:>18.2}",
            format!("{tile}x{tile}"),
            cycles[0] as f64 / 1e6,
            (cycles[1].saturating_sub(floor)) as f64 / 1e6,
            (cycles[2].saturating_sub(floor)) as f64 / 1e6,
        );
    }
    println!();
    impulse_bench::print_artifacts(&[&journal_path]);

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} grid point(s) failed:", failures.len());
        for (id, e) in &failures {
            eprintln!("  {id}: {e}");
        }
        eprintln!("(recorded in {journal_path}; rerun with --resume)");
        ExitCode::FAILURE
    }
}
