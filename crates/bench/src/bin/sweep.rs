//! Design-choice sweeps over the Impulse controller's sizing parameters,
//! using the scatter/gather CG kernel (the workload that stresses every
//! mechanism at once). The paper fixes these by fiat — 256-byte
//! descriptor buffers, a 2 KB prefetch SRAM, eight descriptors, an
//! on-chip PgTbl TLB — so this harness asks how sensitive the headline
//! result is to each.
//!
//! Sweeps: per-descriptor prefetch buffer size, non-shadow prefetch SRAM
//! size, controller TLB entries, DRAM banks, and the DRAM scheduling
//! policy. Overrides: `rows=`, `nnz=`, `seed=`.

use std::sync::Arc;

use impulse_bench::Args;
use impulse_dram::SchedulePolicy;
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_workloads::{Mmp, MmpParams, MmpVariant, Smvp, SmvpVariant, SparsePattern};

fn run(cfg: &SystemConfig, pattern: &Arc<SparsePattern>) -> Report {
    let mut m = Machine::new(cfg);
    let w = Smvp::setup(&mut m, pattern.clone(), SmvpVariant::ScatterGather).expect("setup");
    w.run(&mut m, 1);
    m.report("sweep")
}

fn header(title: &str) {
    println!("\n--- {title} ---");
    println!(
        "{:<22}{:>14}{:>12}{:>14}",
        "setting", "cycles", "avg load", "desc buf hits"
    );
}

fn row(label: &str, r: &Report) {
    println!(
        "{:<22}{:>14}{:>12.2}{:>14}",
        label,
        r.cycles,
        r.mem.avg_load_time(),
        r.desc.buffer_hits
    );
}

fn main() {
    let args = Args::parse();
    let rows = args.get("rows", 14_000);
    let nnz = args.get("nnz", if args.paper { 156 } else { 24 });
    let seed = args.get("seed", 0x5eed);
    let pattern = Arc::new(SparsePattern::generate(rows, nnz, seed));

    println!("================================================================");
    println!(
        "Impulse design-choice sweeps — scatter/gather CG, n={rows}, nnz={}",
        pattern.nnz()
    );
    println!("(controller prefetch on; each sweep varies one parameter)");
    println!("================================================================");

    let base = SystemConfig::paint().with_prefetch(true, false);

    header("per-descriptor prefetch buffer (paper: 256 B)");
    for bytes in [128u64, 256, 512, 1024] {
        let mut cfg = base.clone();
        cfg.mc.desc_buffer_bytes = bytes;
        row(&format!("{bytes} B"), &run(&cfg, &pattern));
    }

    header("non-shadow prefetch SRAM (paper: 2 KB)");
    for bytes in [512u64, 2048, 8192] {
        let mut cfg = base.clone();
        cfg.mc.prefetch_sram_bytes = bytes;
        row(&format!("{bytes} B"), &run(&cfg, &pattern));
    }

    header("controller PgTbl TLB entries (ours: 64)");
    for entries in [8usize, 16, 64, 256] {
        let mut cfg = base.clone();
        cfg.mc.pgtbl.tlb_entries = entries;
        row(&format!("{entries} entries"), &run(&cfg, &pattern));
    }

    header("DRAM banks (ours: 16)");
    for banks in [4u64, 8, 16, 32] {
        let mut cfg = base.clone();
        cfg.dram.banks = banks;
        row(&format!("{banks} banks"), &run(&cfg, &pattern));
    }

    header("outstanding load misses (MSHRs; Paint's L1 was non-blocking)");
    for mshr in [1usize, 2, 4, 8] {
        let cfg = base.clone().with_mshr(mshr);
        row(&format!("{mshr} outstanding"), &run(&cfg, &pattern));
    }

    header("DRAM scheduling policy (paper's results: in-order)");
    for policy in SchedulePolicy::ALL {
        let mut cfg = base.clone();
        cfg.mc.sched = policy;
        row(policy.name(), &run(&cfg, &pattern));
    }

    // Section 4.2's forward-looking claim: "as caches (and therefore
    // tiles) grow larger, the cost of copying grows, whereas the cost of
    // tile remapping does not." Sweep the tile size and compare the
    // *overhead* each scheme pays on top of the compute-identical
    // conventional load stream.
    println!(
        "
--- tile size vs copy/remap overhead (paper §4.2 claim) ---"
    );
    println!(
        "{:<12}{:>16}{:>18}{:>18}",
        "tile", "conv (Mcyc)", "copy ovh (Mcyc)", "remap ovh (Mcyc)"
    );
    for tile in [16u64, 32, 64] {
        let n = 256;
        let mut cycles = [0u64; 3];
        for (i, variant) in MmpVariant::ALL.iter().enumerate() {
            let mut m = Machine::new(&SystemConfig::paint());
            let mut w = Mmp::setup(&mut m, MmpParams { n, tile }, *variant).expect("mmp");
            w.run(&mut m).expect("mmp run");
            cycles[i] = m.report("t").cycles;
        }
        // Overhead = extra instructions + syscalls relative to the pure
        // kernel, measured as time above the (fast, conflict-free) remap
        // compute floor. Copy overhead grows with tile²; remap overhead
        // is flat per-tile.
        let floor = cycles[2].min(cycles[1]);
        println!(
            "{:<12}{:>16.2}{:>18.2}{:>18.2}",
            format!("{tile}x{tile}"),
            cycles[0] as f64 / 1e6,
            (cycles[1].saturating_sub(floor)) as f64 / 1e6,
            (cycles[2].saturating_sub(floor)) as f64 / 1e6,
        );
    }
    println!();
}
