//! Ablation of the DRAM scheduler the paper was designing (Section 2.2):
//! in-order issue (their published configuration) vs. open-row-first
//! reordering vs. bank-parallel interleave.
//!
//! Two address mixes exercise the two goals the paper names:
//!
//! * **interleaved streams** — several sequential streams whose arrival
//!   order alternates between them (the access pattern of CG's DATA /
//!   COLUMN / x' streams, and of McKee et al.'s stream benchmarks).
//!   In-order issue ping-pongs between DRAM rows; grouping by row turns
//!   almost every access into an open-row hit.
//! * **dense gather** — word-grained scatter/gather batches over a region
//!   small enough that several requests share a row (reordering recovers
//!   that locality; bank interleave overlaps the rest).
//!
//! Overrides: `words=` (batch size), `batches=`, `streams=`, `seed=`,
//! `jobs=` (worker threads; default all hardware threads, `jobs=1` for
//! the serial path). Each (workload, policy) cell simulates its own DRAM,
//! so the grid fans across a job pool; results print in grid order, so
//! the output is identical at any `jobs=` value.

use impulse_bench::{runner, Args};
use impulse_dram::{Dram, DramConfig, SchedulePolicy, Scheduler};
use impulse_types::{AccessKind, MAddr};

/// Deterministic xorshift for address generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Batches that round-robin `streams` sequential streams. The streams are
/// spaced a whole bank-rotation apart so they contend for the same banks
/// with different rows — the worst case for in-order issue.
fn stream_batches(cfg: &DramConfig, streams: u64, words: u64, batches: u64) -> Vec<Vec<MAddr>> {
    let bank_rotation = cfg.row_bytes * cfg.banks;
    let mut cursors: Vec<u64> = (0..streams).map(|s| s * 8 * bank_rotation).collect();
    (0..batches)
        .map(|_| {
            (0..words)
                .map(|i| {
                    let s = (i % streams) as usize;
                    let a = cursors[s];
                    cursors[s] += 8;
                    MAddr::new(a)
                })
                .collect()
        })
        .collect()
}

/// Word-grained gather batches over a dense region (several requests per
/// DRAM row).
fn gather_batches(rng: &mut Rng, words: u64, span: u64, batches: u64) -> Vec<Vec<MAddr>> {
    (0..batches)
        .map(|_| {
            (0..words)
                .map(|_| MAddr::new((rng.next() % (span / 8)) * 8))
                .collect()
        })
        .collect()
}

fn run(policy: SchedulePolicy, batches: &[Vec<MAddr>]) -> (u64, f64) {
    let mut dram = Dram::new(DramConfig {
        banks: 16,
        t_bus_min: 1,
        ..DramConfig::default()
    });
    let sched = Scheduler::new(policy);
    let mut now = 0;
    for b in batches {
        now = sched.run_batch(&mut dram, b, AccessKind::Load, 8, now).done;
    }
    (now, dram.stats().row_hit_ratio())
}

fn main() -> std::process::ExitCode {
    let args = Args::parse();
    let words = args.get("words", 64);
    let n_batches = args.get("batches", if args.paper { 20_000 } else { 4_000 });
    let streams = args.get("streams", 4);
    let seed = args.get("seed", 42);
    let jobs = match args.jobs() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}\nusage: ablation_dram [--paper] [words=N] [batches=N] [streams=N] [seed=N] [jobs=N]");
            return std::process::ExitCode::from(2);
        }
    };

    let dram_cfg = DramConfig::default();
    let mut rng = Rng(seed | 1);
    let workloads = [
        (
            "interleaved streams",
            stream_batches(&dram_cfg, streams, words, n_batches),
        ),
        (
            "dense gather (64 KB image)",
            gather_batches(&mut rng, words, 64 * 1024, n_batches),
        ),
    ];

    println!("\n================================================================");
    println!("DRAM scheduler ablation — {n_batches} batches of {words} word reads");
    println!("(the paper's published results use the in-order scheduler; the");
    println!(" reordering policies are its Section 2.2 'designed' scheduler)");
    println!("================================================================");

    // Fan the (workload × policy) grid across the pool; each cell owns
    // its DRAM and the batches are shared read-only.
    let grid: Vec<_> = workloads
        .iter()
        .flat_map(|(_, batches)| {
            SchedulePolicy::ALL
                .iter()
                .map(move |&policy| move || run(policy, batches))
        })
        .collect();
    let results = runner::run_ordered(grid, jobs);
    let mut results = results.chunks_exact(SchedulePolicy::ALL.len());

    for (name, _) in &workloads {
        println!("\n--- {name} ---");
        println!(
            "{:<18}{:>14}{:>12}{:>10}",
            "policy", "total cycles", "row hits", "speedup"
        );
        let cells = results.next().expect("one chunk per workload");
        let in_order = SchedulePolicy::ALL
            .iter()
            .position(|&p| p == SchedulePolicy::InOrder)
            .expect("in-order policy exists");
        let (base_cycles, _) = cells[in_order];
        for (policy, &(cycles, row_hits)) in SchedulePolicy::ALL.iter().zip(cells) {
            println!(
                "{:<18}{:>14}{:>11.1}%{:>10.2}",
                policy.name(),
                cycles,
                100.0 * row_hits,
                base_cycles as f64 / cycles as f64
            );
        }
    }
    println!();
    std::process::ExitCode::SUCCESS
}
