//! Regenerates **Table 2** of the paper: tiled matrix-matrix product
//! under three memory systems × four prefetch configurations.
//!
//! Default: 256 × 256 matrices with 32 × 32 tiles (the same
//! tile-self-conflict regime as the paper at a fraction of the runtime).
//! `--paper` runs the paper's 512 × 512. Overrides: `n=`, `tile=`.

use impulse_bench::{print_table, Args, PaperRow, TableSection, PREFETCH_COLUMNS};
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_workloads::{Mmp, MmpParams, MmpVariant};

fn run_cell(p: MmpParams, variant: MmpVariant, mc_pf: bool, l1_pf: bool) -> Report {
    let cfg = SystemConfig::paint().with_prefetch(mc_pf, l1_pf);
    let mut m = Machine::new(&cfg);
    let mut w = Mmp::setup(&mut m, p, variant).expect("MMP setup");
    w.run(&mut m).expect("MMP run");
    m.report(variant.name())
}

const PAPER_CONVENTIONAL: [PaperRow; 4] = [
    PaperRow {
        time: 2.57,
        l1: 49.0,
        l2: 43.0,
        mem: 8.0,
        avg_load: 6.37,
        speedup: 0.0,
    },
    PaperRow {
        time: 2.51,
        l1: 49.0,
        l2: 43.0,
        mem: 8.0,
        avg_load: 6.18,
        speedup: 1.02,
    },
    PaperRow {
        time: 2.58,
        l1: 48.9,
        l2: 43.4,
        mem: 7.7,
        avg_load: 6.44,
        speedup: 1.00,
    },
    PaperRow {
        time: 2.52,
        l1: 48.9,
        l2: 43.5,
        mem: 7.6,
        avg_load: 6.22,
        speedup: 1.02,
    },
];

const PAPER_COPY: [PaperRow; 4] = [
    PaperRow {
        time: 1.32,
        l1: 98.5,
        l2: 1.3,
        mem: 0.2,
        avg_load: 1.09,
        speedup: 1.95,
    },
    PaperRow {
        time: 1.32,
        l1: 98.5,
        l2: 1.3,
        mem: 0.2,
        avg_load: 1.08,
        speedup: 1.95,
    },
    PaperRow {
        time: 1.32,
        l1: 98.5,
        l2: 1.4,
        mem: 0.1,
        avg_load: 1.06,
        speedup: 1.95,
    },
    PaperRow {
        time: 1.32,
        l1: 98.5,
        l2: 1.4,
        mem: 0.1,
        avg_load: 1.06,
        speedup: 1.95,
    },
];

const PAPER_REMAP: [PaperRow; 4] = [
    PaperRow {
        time: 1.30,
        l1: 99.4,
        l2: 0.4,
        mem: 0.2,
        avg_load: 1.09,
        speedup: 1.98,
    },
    PaperRow {
        time: 1.29,
        l1: 99.4,
        l2: 0.4,
        mem: 0.2,
        avg_load: 1.07,
        speedup: 1.99,
    },
    PaperRow {
        time: 1.30,
        l1: 99.4,
        l2: 0.4,
        mem: 0.2,
        avg_load: 1.09,
        speedup: 1.98,
    },
    PaperRow {
        time: 1.28,
        l1: 99.6,
        l2: 0.4,
        mem: 0.0,
        avg_load: 1.03,
        speedup: 2.01,
    },
];

fn main() {
    let args = Args::parse();
    let n = args.get("n", if args.paper { 512 } else { 256 });
    let tile = args.get("tile", 32);
    let params = MmpParams { n, tile };

    let variants = [
        (
            MmpVariant::Conventional,
            "Conventional memory system (no-copy tiling)",
            PAPER_CONVENTIONAL,
        ),
        (
            MmpVariant::SoftwareCopy,
            "Conventional memory system with software tile copying",
            PAPER_COPY,
        ),
        (
            MmpVariant::TileRemap,
            "Impulse with tile remapping",
            PAPER_REMAP,
        ),
    ];

    let mut sections = Vec::new();
    for (variant, title, paper) in variants {
        let mut reports = Vec::new();
        for (mc_pf, l1_pf, label) in PREFETCH_COLUMNS {
            eprintln!("running {title} / {label}...");
            reports.push(run_cell(params, variant, mc_pf, l1_pf));
        }
        sections.push(TableSection {
            title: title.to_string(),
            reports,
            paper: Some(paper),
        });
    }

    let baseline = sections[0].reports[0].clone();
    print_table(
        &format!("Table 2 — tiled matrix-matrix product ({n}×{n}, {tile}×{tile} tiles)"),
        &sections,
        &baseline,
    );

    let copy = &sections[1].reports[0];
    let remap = &sections[2].reports[0];
    println!(
        "headline: copy speedup {:.2} (paper 1.95), remap speedup {:.2} (paper 1.98), remap ≥ copy: {}",
        copy.speedup_over(&baseline),
        remap.speedup_over(&baseline),
        remap.cycles <= copy.cycles
    );
}
