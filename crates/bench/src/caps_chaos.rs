//! Multi-process capability contention suite: dozens of processes
//! churning grant/share/revoke traffic over the controller's eight
//! shadow descriptors, with every scenario asserting the capability
//! invariants end-to-end — a revoked handle is a typed
//! [`OsError::RevokedCapability`] on *every* subsequent access (no stale
//! data, no panic, no hang), failed syscalls always leave the old state
//! intact, and an unrecoverably corrupted capability-table entry
//! surfaces as [`OsError::CapTableCorrupt`] while the rest of the table
//! keeps working.
//!
//! Like the fault-schedule grid in [`crate::chaos`], every case is
//! seeded and the runner gathers results in submission order, so
//! `results/chaos_caps.json` is byte-identical for a fixed seed at any
//! worker count.

use std::sync::Arc;

use crate::runner::SharedJob;
use impulse_core::McError;
use impulse_fault::{CapsFaultStats, FaultConfig, Trigger};
use impulse_obs::Json;
use impulse_os::{OsError, Pid, RemapGrant};
use impulse_sim::{Machine, SystemConfig};
use impulse_types::geom::PAGE_SIZE;
use impulse_types::VRange;

/// Deterministic splitmix64 stream for the churn scenario. Every draw
/// comes from the seed, never from the clock, so a case replays
/// identically on any worker.
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Self {
        Self(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Scenarios in the capability suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapsScenario {
    /// Two dozen processes churn grant/share/revoke over 8 descriptors;
    /// descriptor exhaustion and stale handles must stay typed.
    Churn,
    /// The owner revokes a gather grant while the receiver is streaming
    /// through the shared alias mid-gather.
    RevokeMidGather,
    /// A grant handed to two children of a simulated fork; the parent's
    /// release tears every derived alias down transitively.
    ForkHandoff,
    /// Release with a live shared alias: the receiver's mapping dies
    /// with the owner's (the stale-shared-alias leak regression).
    ReleaseLeak,
    /// A failing retarget rolls the old descriptor back; the alias keeps
    /// working and a valid retarget still succeeds afterwards.
    RetargetAtomicity,
    /// Scheduled shallow capability-table corruption recovered from the
    /// mirror, plus a deep (mirror too) corruption that must quarantine
    /// the slot with a typed error.
    TableCorruption,
    /// Snapshot with live cross-process shares; restore and an identical
    /// continuation (including revocation) must match cycle-for-cycle.
    SnapshotMidShare,
}

impl CapsScenario {
    /// Every scenario in the suite.
    pub const ALL: [CapsScenario; 7] = [
        CapsScenario::Churn,
        CapsScenario::RevokeMidGather,
        CapsScenario::ForkHandoff,
        CapsScenario::ReleaseLeak,
        CapsScenario::RetargetAtomicity,
        CapsScenario::TableCorruption,
        CapsScenario::SnapshotMidShare,
    ];

    /// Label used in reports and journal ids.
    pub fn name(self) -> &'static str {
        match self {
            CapsScenario::Churn => "churn",
            CapsScenario::RevokeMidGather => "revoke-mid-gather",
            CapsScenario::ForkHandoff => "fork-handoff",
            CapsScenario::ReleaseLeak => "release-leak",
            CapsScenario::RetargetAtomicity => "retarget-atomicity",
            CapsScenario::TableCorruption => "table-corruption",
            CapsScenario::SnapshotMidShare => "snapshot-mid-share",
        }
    }
}

/// Everything one capability case produced: cost, the engine's own
/// counters, the typed faults the scenario provoked, fault-injection
/// bookkeeping, and any invariant violations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapsOutcome {
    /// Scenario label.
    pub scenario: String,
    /// Simulated cycles the case took.
    pub cycles: u64,
    /// Instructions the case retired.
    pub instructions: u64,
    /// Root capabilities granted.
    pub grants: u64,
    /// Derived (shared) capabilities created.
    pub derives: u64,
    /// Region grants coalesced in place.
    pub coalesced: u64,
    /// Revocation walks performed.
    pub revocations: u64,
    /// Capabilities torn down by those walks.
    pub revoked_caps: u64,
    /// Handle validations performed.
    pub validations: u64,
    /// Validations denied for a stale generation.
    pub stale_denials: u64,
    /// Typed errors the scenario deliberately provoked (and checked).
    pub typed_faults: u64,
    /// Syscalls that returned a typed error on this machine.
    pub syscall_failures: u64,
    /// Capability-table corruption/recovery bookkeeping.
    pub caps: CapsFaultStats,
    /// Invariant violations; empty on a healthy run.
    pub violations: Vec<String>,
}

/// Collects engine counters and the universal accounting invariants
/// from a finished machine.
fn collect(
    scenario: CapsScenario,
    m: &Machine,
    typed_faults: u64,
    mut violations: Vec<String>,
) -> CapsOutcome {
    let cs = m.kernel().caps().stats();
    let name = scenario.name();
    // Every typed fault a scenario provokes goes through the syscall
    // boundary exactly once; drift means an error path was silently
    // swallowed or double-charged.
    if m.syscall_failures() != typed_faults {
        violations.push(format!(
            "{name}: typed-fault accounting drifted ({} syscall failures vs {typed_faults} provoked)",
            m.syscall_failures()
        ));
    }
    if cs.revoked_caps < cs.revocations {
        violations.push(format!(
            "{name}: a revocation walk tore down nothing ({} walks, {} caps)",
            cs.revocations, cs.revoked_caps
        ));
    }
    if cs.stale_denials > cs.validations {
        violations.push(format!("{name}: more stale denials than validations"));
    }
    CapsOutcome {
        scenario: name.to_string(),
        cycles: m.now(),
        instructions: m.instructions(),
        grants: cs.grants,
        derives: cs.derives,
        coalesced: cs.coalesced,
        revocations: cs.revocations,
        revoked_caps: cs.revoked_caps,
        validations: cs.validations,
        stale_denials: cs.stale_denials,
        typed_faults,
        syscall_failures: m.syscall_failures(),
        caps: m.kernel().caps().fault_stats(),
        violations,
    }
}

fn fresh(faults: FaultConfig) -> (SystemConfig, Machine) {
    let cfg = SystemConfig::paint_small().with_faults(faults);
    let m = Machine::new(&cfg);
    (cfg, m)
}

fn control(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        ..FaultConfig::none()
    }
}

/// A live grant in the churn scenario: who owns it and which receiver
/// aliases were derived from it.
struct LiveGrant {
    owner: Pid,
    grant: RemapGrant,
    receivers: Vec<(Pid, VRange)>,
}

/// Probes every page of a revoked receiver alias: each access must be
/// the typed revocation error. Returns the number of typed faults
/// provoked; pushes a violation per wrong outcome.
fn probe_revoked(
    m: &mut Machine,
    name: &str,
    receiver: Pid,
    alias: VRange,
    violations: &mut Vec<String>,
) -> u64 {
    if m.sys_switch(receiver).is_err() {
        violations.push(format!("{name}: switch to receiver {receiver:?} failed"));
        return 0;
    }
    let mut typed = 0;
    for page in alias.blocks(PAGE_SIZE) {
        match m.try_load(page) {
            Err(OsError::RevokedCapability { stale, current, .. }) => {
                typed += 1;
                if current <= stale {
                    violations.push(format!(
                        "{name}: revoked access reported generation {current} not past {stale}"
                    ));
                }
            }
            Ok(()) => violations.push(format!(
                "{name}: stale read of revoked alias page {page:?} succeeded"
            )),
            Err(e) => violations.push(format!(
                "{name}: revoked access raised {e:?}, not RevokedCapability"
            )),
        }
    }
    typed
}

/// Churn: 24 processes, each owning a 2-page buffer, randomly granting
/// (recolor), sharing to a peer, or revoking over the 8-descriptor
/// table for 120 rounds, then a final sweep revoking every survivor and
/// re-revoking it to prove staleness.
pub fn run_churn(seed: u64) -> CapsOutcome {
    const PROCS: u64 = 24;
    const ROUNDS: usize = 120;
    let (_cfg, mut m) = fresh(control(seed));
    let mut rng = Prng::new(seed);
    let mut violations = Vec::new();
    let mut typed = 0u64;

    let mut procs: Vec<(Pid, VRange)> = Vec::new();
    for _ in 0..PROCS {
        let pid = m.sys_spawn();
        m.sys_switch(pid).expect("switch to fresh process");
        let buf = m
            .alloc_region(2 * PAGE_SIZE, PAGE_SIZE)
            .expect("churn buffer");
        procs.push((pid, buf));
    }

    let mut live: Vec<LiveGrant> = Vec::new();
    for _ in 0..ROUNDS {
        let (actor, buf) = procs[rng.below(PROCS) as usize];
        m.sys_switch(actor).expect("switch to actor");
        let owned = live.iter().position(|g| g.owner == actor);
        match rng.below(3) {
            // Grant: one recolor grant per process at a time; with 24
            // processes contending for 8 descriptors, NoFreeDescriptor
            // is an expected, typed outcome.
            0 => {
                if owned.is_some() {
                    continue;
                }
                let colors = [rng.below(2), rng.below(2) + 2];
                match m.sys_recolor(buf, &colors) {
                    Ok(grant) => live.push(LiveGrant {
                        owner: actor,
                        grant,
                        receivers: Vec::new(),
                    }),
                    Err(OsError::Mc(McError::NoFreeDescriptor)) => typed += 1,
                    Err(e) => {
                        violations.push(format!("churn: grant failed with unexpected error {e:?}"))
                    }
                }
            }
            // Share: derive a receiver alias and prove it reads.
            1 => {
                let Some(i) = owned else { continue };
                let (peer, _) = procs[rng.below(PROCS) as usize];
                if peer == actor {
                    continue;
                }
                match m.sys_share(&live[i].grant, peer) {
                    Ok(alias) => {
                        live[i].receivers.push((peer, alias));
                        m.sys_switch(peer).expect("switch to receiver");
                        if let Err(e) = m.try_load(alias.start()) {
                            // A live shared alias must read; anything
                            // else is a leak of the typed machinery.
                            typed += 1;
                            violations.push(format!("churn: live shared alias faulted with {e:?}"));
                        }
                    }
                    Err(e) => {
                        violations.push(format!("churn: share of a live grant failed with {e:?}"))
                    }
                }
            }
            // Revoke: the walk must tear down every receiver alias.
            _ => {
                let Some(i) = owned else { continue };
                let g = live.swap_remove(i);
                match m.sys_revoke(&g.grant) {
                    Ok(out) => {
                        if out.caps_revoked < 1 + g.receivers.len() as u64 {
                            violations.push(format!(
                                "churn: revocation walk missed aliases ({} revoked, {} derived)",
                                out.caps_revoked,
                                g.receivers.len()
                            ));
                        }
                        for (peer, alias) in &g.receivers {
                            typed += probe_revoked(&mut m, "churn", *peer, *alias, &mut violations);
                        }
                    }
                    Err(e) => {
                        violations.push(format!("churn: revoke of a live grant failed with {e:?}"))
                    }
                }
            }
        }
    }

    // Final sweep: drain the survivors, then prove every handle went
    // stale — the second revocation is itself the typed error.
    for g in live.drain(..) {
        m.sys_switch(g.owner).expect("switch to owner");
        match m.sys_revoke(&g.grant) {
            Ok(_) => {}
            Err(e) => violations.push(format!("churn: final revoke failed with {e:?}")),
        }
        for (peer, alias) in &g.receivers {
            typed += probe_revoked(&mut m, "churn", *peer, *alias, &mut violations);
        }
        m.sys_switch(g.owner).expect("switch back to owner");
        match m.sys_revoke(&g.grant) {
            Err(OsError::RevokedCapability { stale, .. }) => {
                typed += 1;
                if stale != g.grant.cap.generation {
                    violations.push(
                        "churn: stale generation does not match the revoked handle".to_string(),
                    );
                }
            }
            other => violations.push(format!(
                "churn: double revoke yielded {other:?}, not RevokedCapability"
            )),
        }
    }

    collect(CapsScenario::Churn, &m, typed, violations)
}

/// Revocation under an active gather: the receiver streams element
/// loads through a shared scatter/gather alias, the owner revokes
/// mid-stream, and every later element access is the typed error.
pub fn run_revoke_mid_gather(seed: u64) -> CapsOutcome {
    let (_cfg, mut m) = fresh(control(seed));
    let mut violations = Vec::new();
    let mut typed = 0u64;

    let x = m.alloc_region(128 * 8, 128).expect("gather target");
    let col = m.alloc_region(16 * 4, 128).expect("index vector");
    let indices: Vec<u64> = (0..16).map(|i| (i * 7) % 128).collect();
    let target = VRange::new(x.start(), 128 * 8);
    let grant = m
        .sys_remap_gather(target, 8, Arc::new(indices), col, 4)
        .expect("gather grant");

    let receiver = m.sys_spawn();
    let (rx, _rx_cap) = m.sys_share_cap(&grant, receiver).expect("share gather");
    m.sys_switch(receiver).expect("switch to receiver");
    // First half of the gather streams cleanly...
    for i in 0..8u64 {
        if let Err(e) = m.try_load(rx.start().add(i * 8)) {
            typed += 1;
            violations.push(format!(
                "revoke-mid-gather: live gather element {i} faulted with {e:?}"
            ));
        }
    }
    // ...the owner revokes mid-gather...
    m.sys_switch(Pid::INIT).expect("switch to owner");
    match m.sys_revoke(&grant) {
        Ok(out) => {
            if out.caps_revoked < 2 {
                violations.push(format!(
                    "revoke-mid-gather: walk revoked {} caps, expected root + receiver",
                    out.caps_revoked
                ));
            }
            if out.cycles == 0 {
                violations.push("revoke-mid-gather: revocation walk cost zero cycles".into());
            }
        }
        Err(e) => violations.push(format!("revoke-mid-gather: revoke failed with {e:?}")),
    }
    // ...and the rest of the stream is typed faults, element by element.
    m.sys_switch(receiver).expect("switch back to receiver");
    for i in 8..16u64 {
        match m.try_load(rx.start().add(i * 8)) {
            Err(OsError::RevokedCapability { .. }) => typed += 1,
            other => violations.push(format!(
                "revoke-mid-gather: element {i} after revoke yielded {other:?}"
            )),
        }
    }

    collect(CapsScenario::RevokeMidGather, &m, typed, violations)
}

/// Capability handoff across a simulated fork: the parent shares one
/// grant with two children; the parent's release transitively kills
/// both children's aliases, and a second release is stale.
pub fn run_fork_handoff(seed: u64) -> CapsOutcome {
    let (_cfg, mut m) = fresh(control(seed));
    let mut violations = Vec::new();
    let mut typed = 0u64;

    let buf = m.alloc_region(4 * PAGE_SIZE, PAGE_SIZE).expect("buffer");
    let grant = m.sys_recolor(buf, &[0, 1]).expect("parent grant");
    let children = [m.sys_spawn(), m.sys_spawn()];
    let mut aliases = Vec::new();
    for &child in &children {
        let alias = m.sys_share(&grant, child).expect("handoff share");
        m.sys_switch(child).expect("switch to child");
        if let Err(e) = m.try_load(alias.start()) {
            typed += 1;
            violations.push(format!("fork-handoff: child alias faulted live: {e:?}"));
        }
        m.sys_switch(Pid::INIT).expect("switch to parent");
        aliases.push((child, alias));
    }

    match m.sys_release(&grant) {
        Ok(()) => {}
        Err(e) => violations.push(format!("fork-handoff: release failed with {e:?}")),
    }
    for (child, alias) in &aliases {
        typed += probe_revoked(&mut m, "fork-handoff", *child, *alias, &mut violations);
    }
    m.sys_switch(Pid::INIT).expect("switch to parent");
    match m.sys_release(&grant) {
        Err(OsError::RevokedCapability { stale, current, .. }) => {
            typed += 1;
            if stale != grant.cap.generation || current <= stale {
                violations.push("fork-handoff: stale release misreported generations".into());
            }
        }
        other => violations.push(format!(
            "fork-handoff: double release yielded {other:?}, not RevokedCapability"
        )),
    }

    collect(CapsScenario::ForkHandoff, &m, typed, violations)
}

/// The stale-shared-alias regression at scenario scale: release while a
/// receiver holds a live alias; the receiver's every page goes typed.
pub fn run_release_leak(seed: u64) -> CapsOutcome {
    let (_cfg, mut m) = fresh(control(seed));
    let mut violations = Vec::new();
    let mut typed = 0u64;

    let buf = m.alloc_region(4 * PAGE_SIZE, PAGE_SIZE).expect("buffer");
    let grant = m.sys_recolor(buf, &[0, 1]).expect("grant");
    let receiver = m.sys_spawn();
    let rx = m.sys_share(&grant, receiver).expect("share");
    m.sys_switch(receiver).expect("switch to receiver");
    for page in rx.blocks(PAGE_SIZE) {
        if let Err(e) = m.try_load(page) {
            typed += 1;
            violations.push(format!("release-leak: live alias page faulted: {e:?}"));
        }
    }
    m.sys_switch(Pid::INIT).expect("switch to owner");
    if let Err(e) = m.sys_release(&grant) {
        violations.push(format!("release-leak: release failed with {e:?}"));
    }
    typed += probe_revoked(&mut m, "release-leak", receiver, rx, &mut violations);

    collect(CapsScenario::ReleaseLeak, &m, typed, violations)
}

/// Retarget atomicity: with the descriptor table completely full, a
/// retarget whose new geometry is rejected by the controller must roll
/// the old descriptor back — the alias keeps reading — and a
/// well-formed retarget afterwards still succeeds.
pub fn run_retarget_atomicity(seed: u64) -> CapsOutcome {
    let (_cfg, mut m) = fresh(control(seed));
    let mut violations = Vec::new();
    let mut typed = 0u64;

    let a = m.alloc_region(64 * PAGE_SIZE, PAGE_SIZE).expect("tiles");
    let mut grant = m
        .sys_remap_strided(a.start(), 64, 128, 8, 4096)
        .expect("strided grant");
    m.load(grant.alias.start());

    // Exhaust the descriptor table so the rollback has no spare slot to
    // lean on: the freed slot itself must absorb the reclaim.
    let mut fillers = Vec::new();
    loop {
        let fb = m.alloc_region(PAGE_SIZE, PAGE_SIZE).expect("filler buffer");
        match m.sys_recolor(fb, &[0]) {
            Ok(g) => fillers.push(g),
            Err(OsError::Mc(McError::NoFreeDescriptor)) => {
                typed += 1;
                break;
            }
            Err(e) => {
                violations.push(format!("retarget-atomicity: filler failed with {e:?}"));
                break;
            }
        }
    }

    // Stride smaller than the object size is rejected at descriptor
    // install; the old descriptor must come back.
    match m.sys_retarget_strided(&mut grant, a.start(), 64, 32, 8) {
        Err(OsError::Mc(McError::BadDescriptor(_))) => typed += 1,
        other => violations.push(format!(
            "retarget-atomicity: bad geometry yielded {other:?}, not BadDescriptor"
        )),
    }
    match m.try_load(grant.alias.start()) {
        Ok(()) => {}
        Err(e) => violations.push(format!(
            "retarget-atomicity: alias dead after rolled-back retarget: {e:?}"
        )),
    }

    // A well-formed retarget still goes through on the same full table.
    match m.sys_retarget_strided(&mut grant, a.start().add(128), 64, 128, 8) {
        Ok(()) => {
            if let Err(e) = m.try_load(grant.alias.start()) {
                violations.push(format!(
                    "retarget-atomicity: alias dead after valid retarget: {e:?}"
                ));
            }
        }
        Err(e) => violations.push(format!(
            "retarget-atomicity: valid retarget failed with {e:?}"
        )),
    }

    for g in &fillers {
        if let Err(e) = m.sys_release(g) {
            violations.push(format!("retarget-atomicity: filler release failed: {e:?}"));
        }
    }
    if let Err(e) = m.sys_release(&grant) {
        violations.push(format!("retarget-atomicity: final release failed: {e:?}"));
    }

    collect(CapsScenario::RetargetAtomicity, &m, typed, violations)
}

/// Capability-table corruption: a scheduled injector flips working-copy
/// checksums during validations (always recovered from the mirror),
/// then a deep corruption — mirror included — must quarantine the slot
/// as a typed [`OsError::CapTableCorrupt`] while the rest of the table
/// keeps granting.
pub fn run_table_corruption(seed: u64) -> CapsOutcome {
    let faults = FaultConfig {
        seed,
        caps_corrupt: Trigger::EveryN { every: 3, phase: 1 },
        ..FaultConfig::none()
    };
    let (_cfg, mut m) = fresh(faults);
    let mut violations = Vec::new();
    let mut typed = 0u64;

    // Churn enough validations for the schedule to fire: every share
    // and revoke validates the handle (and its integrity) first.
    let buf = m.alloc_region(2 * PAGE_SIZE, PAGE_SIZE).expect("buffer");
    let receiver = m.sys_spawn();
    for _ in 0..12 {
        let g = m.sys_recolor(buf, &[0]).expect("grant under corruption");
        let rx = m.sys_share(&g, receiver).expect("share under corruption");
        m.sys_switch(receiver).expect("switch to receiver");
        if let Err(e) = m.try_load(rx.start()) {
            typed += 1;
            violations.push(format!("table-corruption: live alias faulted: {e:?}"));
        }
        m.sys_switch(Pid::INIT).expect("switch to owner");
        if let Err(e) = m.sys_revoke(&g) {
            violations.push(format!("table-corruption: revoke failed with {e:?}"));
        }
    }
    let mid = m.kernel().caps().fault_stats();
    if mid.corruptions == 0 {
        violations.push("table-corruption: corruption schedule never fired".into());
    }
    if mid.reloads != mid.corruptions || mid.unrecoverable != 0 {
        violations.push(format!(
            "table-corruption: shallow corruption not fully recovered ({mid:?})"
        ));
    }

    // Deep corruption: working copy AND mirror damaged. The next
    // validation must quarantine the slot with the typed error.
    let doomed = m.sys_recolor(buf, &[1]).expect("doomed grant");
    m.kernel_mut()
        .caps_mut()
        .inject_corruption(doomed.cap.index, true);
    match m.sys_release(&doomed) {
        Err(OsError::CapTableCorrupt { slot }) => {
            typed += 1;
            if slot != doomed.cap.index {
                violations.push(format!(
                    "table-corruption: quarantined slot {slot}, expected {}",
                    doomed.cap.index
                ));
            }
        }
        other => violations.push(format!(
            "table-corruption: deep corruption yielded {other:?}, not CapTableCorrupt"
        )),
    }
    let end = m.kernel().caps().fault_stats();
    if end.unrecoverable != 1 {
        violations.push(format!(
            "table-corruption: expected exactly one unrecoverable entry, saw {}",
            end.unrecoverable
        ));
    }
    // The injector may also have fired on the quarantining validation;
    // either way every *recoverable* corruption was reloaded.
    if end.reloads > end.corruptions || end.reloads + end.unrecoverable < end.corruptions {
        violations.push(format!(
            "table-corruption: recovery accounting drifted ({end:?})"
        ));
    }

    // The quarantine is contained: granting, sharing, and revoking keep
    // working on the rest of the table, and a scrub finds it clean.
    match m.sys_recolor(buf, &[2]) {
        Ok(g) => {
            m.load(g.alias.start());
            if let Err(e) = m.sys_release(&g) {
                violations.push(format!("table-corruption: post-quarantine release: {e:?}"));
            }
        }
        Err(e) => violations.push(format!(
            "table-corruption: grant after quarantine failed with {e:?}"
        )),
    }
    let (_checked, repaired) = m.kernel_mut().caps_mut().scrub();
    if repaired != 0 {
        violations.push(format!(
            "table-corruption: scrub found {repaired} latent corruptions after recovery"
        ));
    }

    collect(CapsScenario::TableCorruption, &m, typed, violations)
}

/// Snapshot with live cross-process shares: restore must resume
/// bit-exactly, and an identical continuation — receiver streaming,
/// then revocation, then typed faults — must land both machines on the
/// same cycle count, the same capability counters, and byte-identical
/// re-snapshots.
pub fn run_snapshot_mid_share(seed: u64) -> CapsOutcome {
    let (cfg, mut m) = fresh(control(seed));
    let mut violations = Vec::new();

    let buf = m.alloc_region(4 * PAGE_SIZE, PAGE_SIZE).expect("buffer");
    let grant = m.sys_recolor(buf, &[0, 1]).expect("grant");
    let receiver = m.sys_spawn();
    let rx = m.sys_share(&grant, receiver).expect("share");
    m.sys_switch(receiver).expect("switch to receiver");
    m.load(rx.start());

    let image = m.snapshot(&cfg);
    let mut restored = match Machine::restore(&cfg, &image) {
        Ok(r) => r,
        Err(e) => {
            violations.push(format!("snapshot-mid-share: restore failed: {e:?}"));
            return collect(CapsScenario::SnapshotMidShare, &m, 0, violations);
        }
    };

    // The identical continuation, applied to both machines.
    let mut typed_per_machine = [0u64; 2];
    for (i, mm) in [&mut m, &mut restored].into_iter().enumerate() {
        for page in rx.blocks(PAGE_SIZE) {
            if mm.try_load(page).is_err() {
                violations.push(format!(
                    "snapshot-mid-share: live alias faulted on machine {i}"
                ));
            }
        }
        mm.sys_switch(Pid::INIT).expect("switch to owner");
        if let Err(e) = mm.sys_revoke(&grant) {
            violations.push(format!(
                "snapshot-mid-share: revoke failed on machine {i}: {e:?}"
            ));
        }
        mm.sys_switch(receiver).expect("switch to receiver");
        for page in rx.blocks(PAGE_SIZE) {
            match mm.try_load(page) {
                Err(OsError::RevokedCapability { .. }) => typed_per_machine[i] += 1,
                other => violations.push(format!(
                    "snapshot-mid-share: post-restore revoked access yielded {other:?}"
                )),
            }
        }
    }

    if m.now() != restored.now() || m.instructions() != restored.instructions() {
        violations.push(format!(
            "snapshot-mid-share: continuation diverged ({} vs {} cycles)",
            m.now(),
            restored.now()
        ));
    }
    if m.kernel().caps().stats() != restored.kernel().caps().stats() {
        violations.push("snapshot-mid-share: capability counters diverged".into());
    }
    if typed_per_machine[0] != typed_per_machine[1] {
        violations.push("snapshot-mid-share: typed-fault streams diverged".into());
    }
    if m.snapshot(&cfg) != restored.snapshot(&cfg) {
        violations.push("snapshot-mid-share: re-snapshots are not byte-identical".into());
    }

    collect(
        CapsScenario::SnapshotMidShare,
        &m,
        typed_per_machine[0],
        violations,
    )
}

/// Runs one scenario under `seed`.
pub fn run_caps_case(s: CapsScenario, seed: u64) -> CapsOutcome {
    match s {
        CapsScenario::Churn => run_churn(seed),
        CapsScenario::RevokeMidGather => run_revoke_mid_gather(seed),
        CapsScenario::ForkHandoff => run_fork_handoff(seed),
        CapsScenario::ReleaseLeak => run_release_leak(seed),
        CapsScenario::RetargetAtomicity => run_retarget_atomicity(seed),
        CapsScenario::TableCorruption => run_table_corruption(seed),
        CapsScenario::SnapshotMidShare => run_snapshot_mid_share(seed),
    }
}

/// A shared capability-suite job for the supervised runner.
pub type CapsJob = SharedJob<CapsOutcome>;

/// Every scenario paired with its stable journal id, in deterministic
/// submission order.
pub fn caps_chaos_jobs(seed: u64) -> Vec<(String, CapsJob)> {
    CapsScenario::ALL
        .iter()
        .map(|&s| {
            let id = s.name().to_string();
            let job: CapsJob = Arc::new(move || run_caps_case(s, seed));
            (id, job)
        })
        .collect()
}

impl CapsOutcome {
    /// Serializes this case for `chaos_caps.json` and the run journal.
    pub fn to_json(&self) -> Json {
        case_json(self)
    }

    /// Rebuilds a case from [`CapsOutcome::to_json`] output (the resume
    /// path); `None` if the shape is wrong.
    pub fn from_json(v: &Json) -> Option<Self> {
        let u = |obj: &Json, k: &str| obj.get(k).and_then(Json::as_u64);
        let caps = v.get("caps")?;
        let violations = match v.get("violations")? {
            Json::Arr(items) => items
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(Self {
            scenario: v.get("scenario")?.as_str()?.to_string(),
            cycles: u(v, "cycles")?,
            instructions: u(v, "instructions")?,
            grants: u(v, "grants")?,
            derives: u(v, "derives")?,
            coalesced: u(v, "coalesced")?,
            revocations: u(v, "revocations")?,
            revoked_caps: u(v, "revoked_caps")?,
            validations: u(v, "validations")?,
            stale_denials: u(v, "stale_denials")?,
            typed_faults: u(v, "typed_faults")?,
            syscall_failures: u(v, "syscall_failures")?,
            caps: CapsFaultStats {
                corruptions: u(caps, "corruptions")?,
                reloads: u(caps, "reloads")?,
                recovery_cycles: u(caps, "recovery_cycles")?,
                unrecoverable: u(caps, "unrecoverable")?,
            },
            violations,
        })
    }
}

/// JSON for one capability case.
fn case_json(o: &CapsOutcome) -> Json {
    let mut c = Json::obj();
    c.set("scenario", Json::Str(o.scenario.clone()));
    c.set("cycles", Json::UInt(o.cycles));
    c.set("instructions", Json::UInt(o.instructions));
    c.set("grants", Json::UInt(o.grants));
    c.set("derives", Json::UInt(o.derives));
    c.set("coalesced", Json::UInt(o.coalesced));
    c.set("revocations", Json::UInt(o.revocations));
    c.set("revoked_caps", Json::UInt(o.revoked_caps));
    c.set("validations", Json::UInt(o.validations));
    c.set("stale_denials", Json::UInt(o.stale_denials));
    c.set("typed_faults", Json::UInt(o.typed_faults));
    c.set("syscall_failures", Json::UInt(o.syscall_failures));
    let mut caps = Json::obj();
    caps.set("corruptions", Json::UInt(o.caps.corruptions));
    caps.set("reloads", Json::UInt(o.caps.reloads));
    caps.set("recovery_cycles", Json::UInt(o.caps.recovery_cycles));
    caps.set("unrecoverable", Json::UInt(o.caps.unrecoverable));
    c.set("caps", caps);
    c.set(
        "violations",
        Json::Arr(o.violations.iter().map(|s| Json::Str(s.clone())).collect()),
    );
    c
}

/// Serializes a capability-suite run: schema `impulse-caps-chaos-v1`,
/// per-case counters, whole-run totals, and the flattened violation
/// list (`ok` is true iff it is empty).
pub fn caps_chaos_document(seed: u64, outcomes: &[CapsOutcome]) -> Json {
    let mut doc = Json::obj();
    doc.set("schema", Json::Str("impulse-caps-chaos-v1".into()));
    doc.set("seed", Json::UInt(seed));
    doc.set("cases", Json::Arr(outcomes.iter().map(case_json).collect()));

    let sum = |f: fn(&CapsOutcome) -> u64| outcomes.iter().map(f).sum::<u64>();
    let mut totals = Json::obj();
    totals.set("grants", Json::UInt(sum(|o| o.grants)));
    totals.set("derives", Json::UInt(sum(|o| o.derives)));
    totals.set("revocations", Json::UInt(sum(|o| o.revocations)));
    totals.set("revoked_caps", Json::UInt(sum(|o| o.revoked_caps)));
    totals.set("validations", Json::UInt(sum(|o| o.validations)));
    totals.set("stale_denials", Json::UInt(sum(|o| o.stale_denials)));
    totals.set("typed_faults", Json::UInt(sum(|o| o.typed_faults)));
    totals.set("syscall_failures", Json::UInt(sum(|o| o.syscall_failures)));
    let mut caps = Json::obj();
    caps.set("corruptions", Json::UInt(sum(|o| o.caps.corruptions)));
    caps.set("reloads", Json::UInt(sum(|o| o.caps.reloads)));
    caps.set(
        "recovery_cycles",
        Json::UInt(sum(|o| o.caps.recovery_cycles)),
    );
    caps.set("unrecoverable", Json::UInt(sum(|o| o.caps.unrecoverable)));
    totals.set("caps", caps);
    doc.set("totals", totals);

    let violations: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.violations.iter().cloned())
        .collect();
    doc.set(
        "violations",
        Json::Arr(violations.iter().map(|s| Json::Str(s.clone())).collect()),
    );
    doc.set("ok", Json::Bool(violations.is_empty()));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;

    #[test]
    fn churn_survives_contention_with_typed_errors_only() {
        let o = run_churn(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(o.grants > 0 && o.revocations > 0, "churn actually churned");
        assert!(o.stale_denials > 0, "double revokes were denied as stale");
        assert!(o.typed_faults > 0, "contention provoked typed errors");
    }

    #[test]
    fn revoke_mid_gather_turns_the_stream_typed() {
        let o = run_revoke_mid_gather(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert_eq!(o.typed_faults, 8, "second half of the gather all typed");
        assert!(o.revoked_caps >= 2, "root + derived receiver alias");
    }

    #[test]
    fn fork_handoff_and_release_leak_die_transitively() {
        for o in [run_fork_handoff(7), run_release_leak(7)] {
            assert!(o.violations.is_empty(), "{:?}", o.violations);
            assert!(o.derives >= 1);
            assert!(o.stale_denials >= 1 || o.typed_faults >= 1);
        }
    }

    #[test]
    fn retarget_rolls_back_on_a_full_table() {
        let o = run_retarget_atomicity(42);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert_eq!(o.typed_faults, 2, "table exhaustion + bad geometry");
    }

    #[test]
    fn table_corruption_is_detected_and_contained() {
        let o = run_table_corruption(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(o.caps.corruptions > 0, "schedule fired");
        assert!(o.caps.reloads > 0, "shallow corruption recovered");
        assert_eq!(o.caps.unrecoverable, 1, "deep corruption quarantined");
    }

    #[test]
    fn snapshot_mid_share_resumes_bit_exactly() {
        let o = run_snapshot_mid_share(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(o.typed_faults > 0, "post-restore revocation went typed");
    }

    #[test]
    fn outcomes_round_trip_through_json() {
        let o = run_release_leak(3);
        let back = CapsOutcome::from_json(&o.to_json()).expect("decode");
        assert_eq!(o, back);
    }

    #[test]
    fn caps_suite_is_deterministic_across_worker_counts() {
        let run = |workers| {
            let jobs: Vec<_> = caps_chaos_jobs(1999)
                .into_iter()
                .map(|(_, j)| move || j())
                .collect();
            let outcomes = runner::run_ordered(jobs, workers);
            format!("{:#}\n", caps_chaos_document(1999, &outcomes))
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(
            serial, parallel,
            "chaos_caps.json must not depend on workers"
        );
        assert!(serial.contains("impulse-caps-chaos-v1"));
        assert!(serial.contains("\"ok\": true"), "suite is violation-free");
    }
}
