//! Minimal self-timed micro-benchmark harness.
//!
//! The workspace builds fully offline, so the benchmark targets cannot
//! pull in an external statistics framework. This harness covers what the
//! `[[bench]]` targets actually need: warm up, run a measured batch of
//! iterations against a wall clock, and print per-iteration timings in a
//! stable, grep-friendly format (`group/name  <median> ns/iter (mean
//! <mean> ns, <n> iters)`).
//!
//! Timings are indicative, not statistically rigorous — the simulator's
//! own *cycle* counts (what the paper reports) are exactly reproducible
//! and live in the regular binaries; these benches only guard the
//! simulator's host-side throughput.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock spend per benchmark measurement.
const TARGET: Duration = Duration::from_millis(300);
/// Samples taken per benchmark (median over these is reported).
const SAMPLES: usize = 5;

/// A named group of benchmarks, printed with a `group/name` prefix.
pub struct Group {
    name: &'static str,
}

impl Group {
    /// Starts a benchmark group.
    pub fn new(name: &'static str) -> Self {
        println!("## {name}");
        Self { name }
    }

    /// Measures `f`, which performs **one** iteration of interesting work
    /// and returns a value kept opaque to the optimizer.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warm-up: also sizes the measured batch so one sample lands
        // near TARGET/SAMPLES.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < TARGET / 10 || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let batch =
            ((TARGET.as_nanos() / SAMPLES as u128) / per_iter.max(1)).clamp(1, 10_000_000) as u64;

        let mut samples: Vec<u128> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() / batch as u128);
        }
        samples.sort_unstable();
        let median = samples[SAMPLES / 2];
        let mean = samples.iter().sum::<u128>() / SAMPLES as u128;
        println!(
            "{}/{name}  {median} ns/iter (mean {mean} ns, {} iters x {SAMPLES} samples)",
            self.name, batch
        );
    }
}
