//! The serve-mode backend: the `run_all` catalog behind the
//! [`impulse_serve::Backend`] trait.
//!
//! The byte-identity contract lives here: [`CatalogBackend::run`] goes
//! through exactly the same job construction as the batch `run_all`
//! binary (build a [`Machine`] from the catalogued config, drive it,
//! report), and stores exactly the strings the batch documents are
//! assembled from — the CSV row and the compact JSON fragment — so a
//! result served from the daemon's cache is byte-identical to the
//! batch runner's artifact for the same `(config, seed, tier)`.
//!
//! Chaos hooks: with [`CatalogBackend::with_chaos_hooks`], three
//! synthetic experiments (`__chaos/hang`, `__chaos/panic`,
//! `__chaos/flaky`) join the catalog so the chaos suite can provoke
//! watchdog kills, worker panics, and retry-then-succeed flakiness
//! against a live server without touching real experiments. They are
//! off by default and never appear in production catalogs.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use impulse_serve::{Backend, StoredResult};
use impulse_sim::Machine;
use impulse_types::ident::{digest64, mix};
use impulse_types::TierPolicy;

use crate::experiments::{catalog_entries, report_artifacts};

/// Name prefix for the synthetic fault-injection experiments.
pub const CHAOS_PREFIX: &str = "__chaos/";

/// How many times `__chaos/flaky` fails before succeeding.
pub const FLAKY_FAILURES: u32 = 2;

/// The `run_all` catalog as a daemon backend.
pub struct CatalogBackend {
    chaos_hooks: bool,
    flaky_calls: Mutex<HashMap<String, u32>>,
}

impl Default for CatalogBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl CatalogBackend {
    /// Production backend: exactly the 28 catalog experiments.
    pub fn new() -> Self {
        Self {
            chaos_hooks: false,
            flaky_calls: Mutex::new(HashMap::new()),
        }
    }

    /// Test backend: the catalog plus the `__chaos/*` fault hooks.
    pub fn with_chaos_hooks() -> Self {
        Self {
            chaos_hooks: true,
            ..Self::new()
        }
    }

    fn run_chaos_hook(&self, experiment: &str, seed: u64) -> Result<StoredResult, String> {
        match experiment {
            "__chaos/hang" => {
                // Long enough to trip any test watchdog; the attempt
                // thread is abandoned and dies with the process.
                std::thread::sleep(Duration::from_secs(600));
                Err("hang hook unexpectedly woke up".into())
            }
            "__chaos/panic" => panic!("chaos hook: injected worker panic"),
            "__chaos/flaky" => {
                let mut calls = self.flaky_calls.lock().expect("flaky lock");
                let n = calls.entry(experiment.to_string()).or_insert(0);
                *n += 1;
                if *n <= FLAKY_FAILURES {
                    return Err(format!("chaos hook: injected flaky failure #{n}"));
                }
                Ok(StoredResult {
                    csv: format!("__chaos/flaky,{seed},ok"),
                    report: format!("{{\"name\": \"__chaos/flaky\", \"seed\": {seed}}}"),
                })
            }
            other => Err(format!("unknown chaos hook `{other}`")),
        }
    }
}

impl Backend for CatalogBackend {
    fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = catalog_entries(crate::experiments::DEFAULT_SEED)
            .iter()
            .map(|e| e.name().to_string())
            .collect();
        if self.chaos_hooks {
            names.extend(["hang", "panic", "flaky"].map(|n| format!("{CHAOS_PREFIX}{n}")));
        }
        names
    }

    fn config_digest(&self, experiment: &str, seed: u64, tier: TierPolicy) -> Option<u64> {
        if experiment.starts_with(CHAOS_PREFIX) {
            if !self.chaos_hooks || !self.names().iter().any(|n| n == experiment) {
                return None;
            }
            return Some(mix(
                digest64(experiment.as_bytes()),
                digest64(tier.name().as_bytes()),
            ));
        }
        // Several catalog entries share a SystemConfig (all `paint()`),
        // so the digest folds the name in next to the config
        // fingerprint — and the tier override next to both, since the
        // same experiment under a different memory organisation is a
        // different cached result.
        catalog_entries(seed)
            .into_iter()
            .find(|e| e.name() == experiment)
            .map(|e| {
                mix(
                    mix(
                        digest64(experiment.as_bytes()),
                        digest64(tier.name().as_bytes()),
                    ),
                    Machine::config_fingerprint(e.with_tier(tier).config()),
                )
            })
    }

    fn run(&self, experiment: &str, seed: u64, tier: TierPolicy) -> Result<StoredResult, String> {
        if experiment.starts_with(CHAOS_PREFIX) {
            return self.run_chaos_hook(experiment, seed);
        }
        // Same construction path as the batch runner (build from the
        // catalogued config, drive, report), so for `tier = None` the
        // simulated results — and their serialized artifacts — are
        // byte-identical to the batch `run_all` output.
        let entry = catalog_entries(seed)
            .into_iter()
            .find(|e| e.name() == experiment)
            .ok_or_else(|| format!("no catalog entry named `{experiment}`"))?
            .with_tier(tier);
        let mut m = Machine::new(entry.config());
        entry.drive(&mut m);
        let report = m.report(entry.name().to_string());
        let artifacts = report_artifacts(&report);
        Ok(StoredResult {
            csv: artifacts.csv,
            report: format!("{}", artifacts.json),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn digests_are_stable_and_name_sensitive() {
        let b = CatalogBackend::new();
        let d1 = b
            .config_digest("ipc/software gather (copy)", DEFAULT_SEED, TierPolicy::None)
            .expect("known");
        let d2 = b
            .config_digest("ipc/software gather (copy)", DEFAULT_SEED, TierPolicy::None)
            .expect("known");
        assert_eq!(d1, d2, "digest must be deterministic");
        let other = b
            .config_digest("ipc/impulse no-copy gather", DEFAULT_SEED, TierPolicy::None)
            .expect("known");
        assert_ne!(d1, other, "same config, different name ⇒ different digest");
        assert_eq!(
            b.config_digest("no/such/experiment", DEFAULT_SEED, TierPolicy::None),
            None
        );
    }

    #[test]
    fn digests_are_tier_sensitive() {
        let b = CatalogBackend::new();
        let mut seen = std::collections::HashSet::new();
        for tier in TierPolicy::ALL {
            let d = b
                .config_digest("fig1/conventional", DEFAULT_SEED, tier)
                .expect("known");
            assert!(seen.insert(d), "tier {} collides", tier.name());
        }
    }

    #[test]
    fn chaos_hooks_are_invisible_unless_enabled() {
        let plain = CatalogBackend::new();
        assert_eq!(plain.config_digest("__chaos/flaky", 1, TierPolicy::None), None);
        assert_eq!(plain.names().len(), 28);
        let chaotic = CatalogBackend::with_chaos_hooks();
        assert!(chaotic
            .config_digest("__chaos/flaky", 1, TierPolicy::None)
            .is_some());
        assert_eq!(chaotic.names().len(), 31);
        assert_eq!(chaotic.config_digest("__chaos/bogus", 1, TierPolicy::None), None);
    }

    #[test]
    fn flaky_hook_fails_then_succeeds() {
        let b = CatalogBackend::with_chaos_hooks();
        for i in 1..=FLAKY_FAILURES {
            let err = b
                .run("__chaos/flaky", 7, TierPolicy::None)
                .expect_err("injected failure");
            assert!(err.contains(&format!("#{i}")), "got: {err}");
        }
        let ok = b
            .run("__chaos/flaky", 7, TierPolicy::None)
            .expect("succeeds after retries");
        assert_eq!(ok.csv, "__chaos/flaky,7,ok");
    }
}
