//! Record-then-replay execution backend for the benchmark catalog.
//!
//! `mode=replay` runs each experiment twice against the same
//! [`CatalogEntry`] definition: once normally with the machine's
//! recorder attached (the *capture* run — a full execution, so its
//! wall time stands in for the execute path), then again through the
//! batched replay evaluator ([`impulse_sim::replay_into`]) from the
//! encoded capture. The replayed report is asserted byte-identical to
//! the executed one before it is allowed into any artifact; on any
//! replay refusal, codec error, or divergence the executed report is
//! used instead and the run is marked `replayed = false`.
//!
//! The phase walls recorded here (`execute`, `codec`, `eval`) are what
//! `BENCH_run_all.json` reports for the execute-vs-replay speedup
//! claim: the timing-evaluation phase is `eval_wall_ns`, and the
//! capture cost is amortized whenever one capture is replayed against
//! many configurations (the `sweep mode=replay` path, via
//! [`capture_shared`]).

use std::sync::Arc;
use std::time::Instant;

use impulse_sim::{replay_into, replayable, Machine, ReplayCapture, Report, SystemConfig};

use crate::experiments::CatalogEntry;

/// One experiment evaluated through the replay backend: the report the
/// artifacts are built from, plus per-phase host wall times and replay
/// telemetry.
#[derive(Clone, Debug)]
pub struct ReplayRun {
    /// The report the artifacts use. When `replayed` this is the
    /// replay evaluator's report, already asserted byte-identical to
    /// the executed one; otherwise it is the executed report.
    pub report: Report,
    /// Wall time of the recording run — a full execution with capture
    /// hooks attached (the execute-path cost, plus recording overhead).
    pub execute_wall_ns: u64,
    /// Wall time of the encode + decode round trip through the
    /// `impulse-replay-v1` codec.
    pub codec_wall_ns: u64,
    /// Wall time of the batched replay evaluation (machine build +
    /// `replay_into` + report). This is the timing-evaluation phase
    /// the ≥10× speedup claim is about.
    pub eval_wall_ns: u64,
    /// Unfolded operation count in the capture.
    pub raw_ops: u64,
    /// Folded operation count (after pattern compression).
    pub folded_ops: u64,
    /// Demand ops evaluated on the batched fast path.
    pub fast_ops: u64,
    /// Demand ops that fell back to the full simulation path.
    pub fallback_ops: u64,
    /// Whether evaluation fast-forwarded from an embedded snapshot.
    pub fast_forwarded: bool,
    /// Whether the emitted report came from the replay evaluator.
    pub replayed: bool,
    /// Why the run fell back to the executed report, if it did.
    pub fallback_reason: Option<String>,
}

/// Runs one catalog entry through the full record → codec → replay →
/// verify pipeline. Infallible by construction: any replay-side
/// problem falls back to the executed report (with the reason kept for
/// telemetry), so `mode=replay` can never produce *worse* results than
/// `mode=execute`, only faster ones.
pub fn replay_entry(entry: &CatalogEntry) -> ReplayRun {
    let cfg = entry.config().clone();
    let record = replayable(&cfg);

    // Phase 1: the recording run — a complete execution.
    let t = Instant::now();
    let mut m = Machine::new(&cfg);
    if record {
        m.start_recording(&cfg);
    }
    entry.drive(&mut m);
    let exec_report = m.report(entry.name().to_string());
    let capture = m.take_recording();
    let execute_wall_ns = t.elapsed().as_nanos() as u64;

    let mut out = ReplayRun {
        report: exec_report,
        execute_wall_ns,
        codec_wall_ns: 0,
        eval_wall_ns: 0,
        raw_ops: 0,
        folded_ops: 0,
        fast_ops: 0,
        fallback_ops: 0,
        fast_forwarded: false,
        replayed: false,
        fallback_reason: None,
    };
    let cap = match capture {
        Some(Ok(cap)) => cap,
        Some(Err(why)) => {
            out.fallback_reason = Some(format!("capture: {why}"));
            return out;
        }
        None => {
            out.fallback_reason =
                Some("unreplayable configuration (fault schedules or hybrid tiers)".into());
            return out;
        }
    };

    // Phase 2: codec round trip. Replays always evaluate the decoded
    // form, so the bytes on disk are what the claim is measured over.
    let t = Instant::now();
    let bytes = cap.encode();
    let cap = match ReplayCapture::decode(&bytes) {
        Ok(c) => c,
        Err(e) => {
            out.fallback_reason = Some(format!("codec: {e}"));
            return out;
        }
    };
    out.codec_wall_ns = t.elapsed().as_nanos() as u64;
    out.raw_ops = cap.raw_ops;
    out.folded_ops = cap.ops.len() as u64;

    // Phase 3: batched evaluation, then the equality gate.
    let t = Instant::now();
    match eval_capture(&cfg, &cap, entry.name()) {
        Ok((rep, o)) => {
            out.eval_wall_ns = t.elapsed().as_nanos() as u64;
            out.fast_ops = o.fast_ops;
            out.fallback_ops = o.fallback_ops;
            out.fast_forwarded = o.fast_forwarded;
            if reports_identical(&rep, &out.report) {
                out.report = rep;
                out.replayed = true;
            } else {
                out.fallback_reason = Some("replayed report diverged from execution".into());
            }
        }
        Err(e) => {
            out.eval_wall_ns = t.elapsed().as_nanos() as u64;
            out.fallback_reason = Some(format!("replay: {e}"));
        }
    }
    out
}

/// Builds a fresh machine for `cfg`, replays `cap` into it, and
/// collects the report under `name`.
///
/// # Errors
///
/// Propagates [`impulse_sim::ReplayError`] as a string.
pub fn eval_capture(
    cfg: &SystemConfig,
    cap: &ReplayCapture,
    name: &str,
) -> Result<(Report, impulse_sim::ReplayOutcome), String> {
    let mut m = Machine::new(cfg);
    let o = replay_into(&mut m, cfg, cap).map_err(|e| e.to_string())?;
    Ok((m.report(name.to_string()), o))
}

/// Byte-level report equality: both the CSV row and the compact JSON
/// fragment — exactly the strings every artifact is assembled from.
pub fn reports_identical(a: &Report, b: &Report) -> bool {
    a.csv_row() == b.csv_row() && a.to_json().to_string() == b.to_json().to_string()
}

/// Records `drive` once under `cfg` and returns the shared capture for
/// capture-once-replay-many evaluation (the sweep path: one recorded
/// workload, many candidate configurations). Returns `Err` when the
/// configuration is unreplayable or the stream cannot be captured
/// faithfully — callers execute every point directly in that case.
///
/// # Errors
///
/// Returns the capture-refusal reason as a string.
pub fn capture_shared(
    cfg: &SystemConfig,
    drive: impl FnOnce(&mut Machine),
) -> Result<(Arc<ReplayCapture>, u64), String> {
    if !replayable(cfg) {
        return Err("unreplayable configuration (fault schedules or hybrid tiers)".into());
    }
    let t = Instant::now();
    let mut m = Machine::new(cfg);
    m.start_recording(cfg);
    drive(&mut m);
    let cap = m
        .take_recording()
        .expect("recording was started")
        .map_err(|why| format!("capture: {why}"))?;
    Ok((Arc::new(cap), t.elapsed().as_nanos() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{catalog_entries, DEFAULT_SEED};

    #[test]
    fn replay_backend_matches_execution_for_one_entry() {
        let entries = catalog_entries(DEFAULT_SEED);
        let ipc = entries
            .iter()
            .find(|e| e.name().starts_with("ipc/"))
            .expect("ipc entry present");
        let run = replay_entry(ipc);
        assert!(run.replayed, "fell back: {:?}", run.fallback_reason);
        assert!(run.raw_ops > 0 && run.folded_ops > 0);
        assert!(run.fast_ops > 0, "batched fast path never engaged");

        // Independent cross-check against a direct run of the same entry.
        let mut m = Machine::new(ipc.config());
        ipc.drive(&mut m);
        let direct = m.report(ipc.name().to_string());
        assert!(reports_identical(&run.report, &direct));
    }

    #[test]
    fn shared_capture_replays_under_modified_configs() {
        // The sweep contract: record once under the base config, then
        // evaluate timing-only variants against the same capture. Each
        // variant's replayed report must equal its direct execution.
        let entries = catalog_entries(DEFAULT_SEED);
        let ipc = entries
            .iter()
            .find(|e| e.name().starts_with("ipc/"))
            .expect("ipc entry present");
        let base = ipc.config().clone();
        let (cap, _) = capture_shared(&base, |m| ipc.drive(m)).expect("capture");

        let mut banks = base.clone();
        banks.dram.banks = 4;
        for cfg in [base.clone().with_mshr(4), banks] {
            let (rep, _) = eval_capture(&cfg, &cap, "pt").expect("replay");
            let mut m = Machine::new(&cfg);
            ipc.drive(&mut m);
            let direct = m.report("pt".to_string());
            assert!(
                reports_identical(&rep, &direct),
                "shared-capture replay diverged from direct execution"
            );
        }
    }
}
