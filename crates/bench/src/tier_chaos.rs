//! Hybrid-tier chaos suite: the DRAM/SCM tier engine under every fault
//! plane it models — SCM raw bit errors drained through SECDED, write
//! wear retiring lines onto spares and then surfacing typed
//! [`McError::LineRetired`] errors, tag-array corruption detected and
//! refetched from the authoritative SCM copy, and the tier-fail trigger
//! killing DRAM channels mid-run (flat mode rejects with typed
//! [`McError::TierDegraded`], cache mode degrades to SCM bypass).
//!
//! Every scenario asserts the graceful-degradation contract end to end:
//! a tier fault is *corrected, typed, or counted — never silent, never a
//! hang*. Like the fault-schedule grid in [`crate::chaos`] and the
//! capability suite in [`crate::caps_chaos`], every case draws only
//! from the seed and the runner gathers results in submission order, so
//! `results/chaos_tier.json` is byte-identical for a fixed seed at any
//! worker count.

use std::sync::Arc;

use crate::runner::SharedJob;
use impulse_core::{McError, TierConfig, TierEngine, TierStats};
use impulse_dram::{Dram, DramConfig, ScmConfig, ScmStats};
use impulse_fault::{FaultConfig, TierFaultStats, Trigger};
use impulse_obs::Json;
use impulse_sim::{Machine, SystemConfig};
use impulse_types::geom::PAGE_SIZE;
use impulse_types::{AccessKind, MAddr, TierPolicy};

/// Controller line size the suite drives the engine at.
const LINE: u64 = 128;

/// Scenarios in the hybrid-tier suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierScenario {
    /// An indirection-vector gather storm over cold SCM: the MC-side
    /// fill buffer must serve it without thrashing the DRAM cache.
    ColdGatherStorm,
    /// Scatter churn under a tiny wear budget: lines retire onto spares,
    /// the spares wear out, and dead lines surface as typed errors.
    WearOutScatterChurn,
    /// Scheduled tag-array corruption: detected at lookup, the set is
    /// invalidated and refetched from SCM, lost dirty lines counted.
    TagCorruption,
    /// The tier-fail trigger fires mid-gather: flat mode aborts the
    /// batch with a typed error, cache mode completes it via bypass.
    ChannelKillMidGather,
    /// Full-machine snapshot taken mid-degradation; restore and an
    /// identical continuation must match cycle-for-cycle.
    DegradedSnapshotRestore,
    /// SCM raw-bit-error sweep across the double-error fraction: SECDED
    /// corrects singles, detects doubles, and never passes one silently.
    EccAsymmetrySweep,
    /// With every DRAM channel dead, cache mode serves purely by SCM
    /// bypass — and does exactly the SCM work flat mode would.
    BypassModeParity,
}

impl TierScenario {
    /// Every scenario in the suite.
    pub const ALL: [TierScenario; 7] = [
        TierScenario::ColdGatherStorm,
        TierScenario::WearOutScatterChurn,
        TierScenario::TagCorruption,
        TierScenario::ChannelKillMidGather,
        TierScenario::DegradedSnapshotRestore,
        TierScenario::EccAsymmetrySweep,
        TierScenario::BypassModeParity,
    ];

    /// Label used in reports and journal ids.
    pub fn name(self) -> &'static str {
        match self {
            TierScenario::ColdGatherStorm => "cold-gather-storm",
            TierScenario::WearOutScatterChurn => "wear-out-scatter-churn",
            TierScenario::TagCorruption => "tag-corruption",
            TierScenario::ChannelKillMidGather => "channel-kill-mid-gather",
            TierScenario::DegradedSnapshotRestore => "degraded-snapshot-restore",
            TierScenario::EccAsymmetrySweep => "ecc-asymmetry-sweep",
            TierScenario::BypassModeParity => "bypass-mode-parity",
        }
    }
}

/// Everything one tier case produced: cost, the engine's own counters
/// on every fault plane, the typed errors the scenario provoked, and
/// any invariant violations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierOutcome {
    /// Scenario label.
    pub scenario: String,
    /// Simulated cycles the case took.
    pub cycles: u64,
    /// Accesses the scenario issued through the tier.
    pub accesses: u64,
    /// Typed errors the scenario deliberately provoked (and checked).
    pub typed_faults: u64,
    /// Tier engine routing/caching counters.
    pub tier: TierStats,
    /// SCM media counters (wear, retirement, channel occupancy).
    pub scm: ScmStats,
    /// Tag-corruption / channel-kill / bypass bookkeeping.
    pub fault: TierFaultStats,
    /// SCM single-bit errors corrected by SECDED.
    pub ecc_corrected: u64,
    /// SCM double-bit errors detected (uncorrectable, reported).
    pub ecc_detected_double: u64,
    /// SCM flips that passed silently — must stay zero under SECDED.
    pub ecc_silent: u64,
    /// Extra cycles spent in the SCM ECC datapath.
    pub ecc_recovery_cycles: u64,
    /// Invariant violations; empty on a healthy run.
    pub violations: Vec<String>,
}

/// Collects engine counters and the universal graceful-degradation
/// invariants from a finished tier engine.
fn collect(
    scenario: TierScenario,
    eng: &TierEngine,
    cycles: u64,
    accesses: u64,
    typed_faults: u64,
    mut violations: Vec<String>,
) -> TierOutcome {
    let name = scenario.name();
    let tier = eng.stats();
    let scm = eng.scm_stats();
    let fault = eng.fault_stats();
    let ecc = eng.scm_ecc_stats();
    // SECDED never passes a flip silently; a nonzero count means the
    // ECC plane was bypassed somewhere in the tier path.
    if ecc.silent != 0 {
        violations.push(format!(
            "{name}: {} SCM flips passed silently under SECDED",
            ecc.silent
        ));
    }
    // Every detected tag corruption is recovered by invalidation.
    if fault.tag_corruptions != fault.tag_invalidations {
        violations.push(format!(
            "{name}: {} tag corruptions but {} invalidations",
            fault.tag_corruptions, fault.tag_invalidations
        ));
    }
    // Every touch of a dead SCM line is accounted for — either as a
    // typed demand reject or as a counted lost writeback. More dead
    // rejects than accounted events means one went silent.
    if scm.dead_rejects > tier.degraded_rejects + tier.lost_writebacks {
        violations.push(format!(
            "{name}: {} dead-line rejects but only {} counted",
            scm.dead_rejects,
            tier.degraded_rejects + tier.lost_writebacks
        ));
    }
    TierOutcome {
        scenario: name.to_string(),
        cycles,
        accesses,
        typed_faults,
        tier,
        scm,
        fault,
        ecc_corrected: ecc.corrected,
        ecc_detected_double: ecc.detected_double,
        ecc_silent: ecc.silent,
        ecc_recovery_cycles: ecc.recovery_cycles,
        violations,
    }
}

/// A 64 KB DRAM front (512 sets of 128 B) — small enough that modest
/// working sets exercise eviction, writeback, and wear.
fn small_dram_cfg() -> DramConfig {
    DramConfig {
        capacity: 1 << 16,
        ..DramConfig::default()
    }
}

/// A cache-mode engine over a 1 MB SCM with the given wear budget.
fn cache_engine(seed: u64, wear_limit: u32, spare_lines: u64, faults: FaultConfig) -> (TierEngine, Dram) {
    let dcfg = small_dram_cfg();
    let cfg = TierConfig {
        policy: TierPolicy::Cache,
        scm: ScmConfig {
            capacity: 1 << 20,
            wear_limit,
            spare_lines,
            ..ScmConfig::default()
        },
        ..TierConfig::default()
    };
    let mut eng = TierEngine::new(cfg, &dcfg, LINE);
    eng.set_faults(&FaultConfig { seed, ..faults });
    (eng, Dram::new(dcfg))
}

/// A flat-mode engine: 64 KB DRAM partition, 1 MB SCM partition.
fn flat_engine(seed: u64, faults: FaultConfig) -> (TierEngine, Dram) {
    let dcfg = small_dram_cfg();
    let cfg = TierConfig {
        policy: TierPolicy::Flat,
        scm: ScmConfig {
            capacity: 1 << 20,
            ..ScmConfig::default()
        },
        ..TierConfig::default()
    };
    let mut eng = TierEngine::new(cfg, &dcfg, LINE);
    eng.set_faults(&FaultConfig { seed, ..faults });
    (eng, Dram::new(dcfg))
}

/// Cold-gather storm: 64 waves of indirection-vector gathers over 1024
/// distinct cold SCM lines (16× the DRAM cache's 64 KB), each line
/// touched twice back-to-back. The fill buffer must serve the storm —
/// loads from SCM, repeats from the buffer — without installing a
/// single line into the DRAM cache, which stays free for demand traffic.
pub fn run_cold_gather_storm(seed: u64) -> TierOutcome {
    let (mut eng, mut dram) = cache_engine(seed, 1 << 20, 64, FaultConfig::none());
    let mut violations = Vec::new();
    let mut accesses = 0u64;
    let mut t = 0;

    for wave in 0..64u64 {
        let mut reqs = Vec::with_capacity(32);
        for i in 0..16u64 {
            let line = wave * 16 + i;
            // Twice back-to-back: the second touch must be a fill hit.
            reqs.push((MAddr::new(line * LINE), 32));
            reqs.push((MAddr::new(line * LINE), 32));
        }
        accesses += reqs.len() as u64;
        match eng.run_batch(&mut dram, &reqs, AccessKind::Load, t) {
            Ok(done) => t = done,
            Err(e) => violations.push(format!("cold-gather-storm: healthy gather failed: {e:?}")),
        }
    }
    let mid = eng.stats();
    if mid.fill_loads != 1024 || mid.fill_hits != 1024 {
        violations.push(format!(
            "cold-gather-storm: fill buffer served {}/{} of 1024/1024 expected",
            mid.fill_loads, mid.fill_hits
        ));
    }
    if mid.dram_misses != 0 {
        violations.push(format!(
            "cold-gather-storm: gather installed {} lines into the cache",
            mid.dram_misses
        ));
    }

    // The cache is untouched: demand traffic still misses-then-hits.
    for (i, expect_hit) in [(0u64, false), (0u64, true)] {
        accesses += 1;
        match eng.access(&mut dram, MAddr::new(i * LINE), AccessKind::Load, LINE, t, false) {
            Ok(done) => t = done + 1,
            Err(e) => violations.push(format!("cold-gather-storm: demand load failed: {e:?}")),
        }
        let s = eng.stats();
        if expect_hit && s.dram_hits != 1 {
            violations.push("cold-gather-storm: demand re-access missed the cache".into());
        }
    }

    collect(TierScenario::ColdGatherStorm, &eng, t, accesses, 0, violations)
}

/// Scatter churn under a tiny wear budget (2 writes per line, 4
/// spares): three lines contending for one cache set force a dirty
/// writeback on every install, the written SCM lines cross the wear
/// limit and retire onto spares, the spares wear out too, and from then
/// on dead lines surface as typed [`McError::LineRetired`] — on the
/// demand path as an error with a frozen message, on the writeback path
/// as a counted lost dirty line. Nothing is silent, nothing hangs.
pub fn run_wear_out_scatter_churn(seed: u64) -> TierOutcome {
    let (mut eng, mut dram) = cache_engine(
        seed,
        2,
        4,
        FaultConfig::none(),
    );
    let mut violations = Vec::new();
    let mut typed = 0u64;
    let mut accesses = 0u64;
    let mut t = 0;
    let sets = (1u64 << 16) / LINE; // 512

    for i in 0..240u64 {
        // Three visible lines sharing cache set 0: every store evicts a
        // dirty victim and writes it back to SCM.
        let line = (i % 3) * sets;
        accesses += 1;
        match eng.access(&mut dram, MAddr::new(line * LINE), AccessKind::Store, LINE, t, false) {
            Ok(done) => t = done,
            Err(McError::LineRetired { line: dead }) => {
                typed += 1;
                t += 10;
                let msg = format!("{}", McError::LineRetired { line: dead });
                let want = format!("SCM line {dead:#x} is permanently retired");
                if msg != want {
                    violations.push(format!(
                        "wear-out-scatter-churn: error message drifted: `{msg}` != `{want}`"
                    ));
                }
            }
            Err(e) => {
                violations.push(format!(
                    "wear-out-scatter-churn: unexpected error {e:?} (not LineRetired)"
                ));
                t += 10;
            }
        }
    }

    let scm = eng.scm_stats();
    if scm.wear_retirements == 0 {
        violations.push("wear-out-scatter-churn: no line ever retired onto a spare".into());
    }
    if scm.dead_rejects == 0 || typed == 0 {
        violations.push(format!(
            "wear-out-scatter-churn: spares never ran out ({} dead rejects, {typed} typed)",
            scm.dead_rejects
        ));
    }
    if eng.stats().lost_writebacks == 0 {
        violations.push("wear-out-scatter-churn: no dirty writeback ever hit a dead line".into());
    }

    collect(
        TierScenario::WearOutScatterChurn,
        &eng,
        t,
        accesses,
        typed,
        violations,
    )
}

/// Scheduled tag-array corruption under a store-heavy working set:
/// parity detects each corruption at lookup, the set is invalidated
/// (its dirty contents counted lost) and refetched from the
/// authoritative SCM copy, and detection time lands in the tier's
/// recovery-cycle attribution.
pub fn run_tag_corruption(seed: u64) -> TierOutcome {
    let faults = FaultConfig {
        tag_corrupt: Trigger::EveryN { every: 3, phase: 0 },
        ..FaultConfig::none()
    };
    let (mut eng, mut dram) = cache_engine(seed, 1 << 20, 64, faults);
    let mut violations = Vec::new();
    let mut accesses = 0u64;
    let mut t = 0;

    // Six passes of stores over 32 resident lines: every pass after the
    // first re-looks-up valid (dirty) entries, which is where the
    // corruption schedule fires.
    for pass in 0..6u64 {
        for line in 0..32u64 {
            accesses += 1;
            let _ = pass;
            match eng.access(&mut dram, MAddr::new(line * LINE), AccessKind::Store, LINE, t, false)
            {
                Ok(done) => t = done,
                Err(e) => {
                    violations.push(format!("tag-corruption: store failed: {e:?}"));
                    t += 10;
                }
            }
        }
    }

    let f = eng.fault_stats();
    if f.tag_corruptions == 0 {
        violations.push("tag-corruption: corruption schedule never fired".into());
    }
    if f.lost_dirty_lines == 0 {
        violations.push("tag-corruption: no dirty set was ever invalidated".into());
    }
    if f.recovery_cycles == 0 {
        violations.push("tag-corruption: detection cost was never attributed".into());
    }
    if eng.scm_stats().reads <= 32 {
        violations.push("tag-corruption: corrupted sets were not refetched from SCM".into());
    }

    collect(TierScenario::TagCorruption, &eng, t, accesses, 0, violations)
}

/// The tier-fail trigger fires mid-gather. Flat mode: the batch aborts
/// with a typed [`McError::TierDegraded`] naming the dead channel —
/// bounded, never a hang — and the SCM partition keeps serving. Cache
/// mode under the same schedule: every batch completes, dead sets
/// served by SCM bypass.
pub fn run_channel_kill_mid_gather(seed: u64) -> TierOutcome {
    let faults = FaultConfig {
        tier_fail: Trigger::EveryN { every: 4, phase: 0 },
        ..FaultConfig::none()
    };
    let mut violations = Vec::new();
    let mut typed = 0u64;
    let mut accesses = 0u64;

    // Flat mode: gather batches over the DRAM partition, spanning every
    // bank, until the accumulating kills abort one with a typed error.
    let (mut flat, mut dram) = flat_engine(seed, faults.clone());
    let dcfg = small_dram_cfg();
    let mut t = 0;
    let mut saw_reject = false;
    for batch in 0..32u64 {
        let reqs: Vec<(MAddr, u64)> = (0..16u64)
            .map(|i| (MAddr::new(((batch * 16 + i) * dcfg.row_bytes) % (1 << 16)), 32))
            .collect();
        accesses += reqs.len() as u64;
        match flat.run_batch(&mut dram, &reqs, AccessKind::Load, t) {
            Ok(done) => t = done,
            Err(McError::TierDegraded { channel }) => {
                typed += 1;
                t += 10;
                saw_reject = true;
                if channel >= dcfg.banks {
                    violations.push(format!(
                        "channel-kill-mid-gather: dead channel {channel} out of range"
                    ));
                }
            }
            Err(e) => violations.push(format!(
                "channel-kill-mid-gather: flat gather failed with {e:?}, not TierDegraded"
            )),
        }
    }
    if !saw_reject {
        violations.push("channel-kill-mid-gather: kills never aborted a flat gather".into());
    }
    if flat.fault_stats().channel_kills == 0 {
        violations.push("channel-kill-mid-gather: tier-fail schedule never fired".into());
    }
    // The SCM partition is unaffected by dead DRAM channels.
    accesses += 1;
    if let Err(e) = flat.access(&mut dram, MAddr::new(1 << 16), AccessKind::Load, LINE, t, false) {
        violations.push(format!(
            "channel-kill-mid-gather: SCM partition died with the DRAM channel: {e:?}"
        ));
    }

    // Cache mode, same schedule: bypass, not errors.
    let (mut eng, mut dram) = cache_engine(seed, 1 << 20, 64, faults);
    let mut tc = 0;
    for batch in 0..8u64 {
        let reqs: Vec<(MAddr, u64)> =
            (0..16u64).map(|i| (MAddr::new((batch * 16 + i) * LINE), 32)).collect();
        accesses += reqs.len() as u64;
        match eng.run_batch(&mut dram, &reqs, AccessKind::Load, tc) {
            Ok(done) => tc = done,
            Err(e) => violations.push(format!(
                "channel-kill-mid-gather: cache-mode gather must bypass, got {e:?}"
            )),
        }
    }
    let f = eng.fault_stats();
    if f.channel_kills == 0 {
        violations.push("channel-kill-mid-gather: cache-mode kills never fired".into());
    }
    if f.bypass_reads == 0 {
        violations.push("channel-kill-mid-gather: dead sets were never served by bypass".into());
    }

    collect(
        TierScenario::ChannelKillMidGather,
        &eng,
        t + tc,
        accesses,
        typed,
        violations,
    )
}

/// Full-machine snapshot mid-degradation: a cache-mode machine with SCM
/// flips and scheduled channel kills is snapshotted mid-run; the
/// restored machine and the original run an identical continuation and
/// must land on the same cycle count, the same counters on every fault
/// plane, and byte-identical re-snapshots.
pub fn run_degraded_snapshot_restore(seed: u64) -> TierOutcome {
    let faults = FaultConfig {
        seed,
        scm_flip: Trigger::EveryN { every: 5, phase: 0 },
        tier_fail: Trigger::EveryN { every: 64, phase: 0 },
        ..FaultConfig::none()
    };
    let cfg = SystemConfig::paint_small()
        .with_tier(TierPolicy::Cache)
        .with_faults(faults);
    let mut m = Machine::new(&cfg);
    let mut violations = Vec::new();

    // 512 KB working set at line stride: larger than the 256 KB L2, so
    // demand traffic reaches the tier on both passes.
    let buf = m.alloc_region(512 * 1024, PAGE_SIZE).expect("tier buffer");
    let mut accesses = 0u64;
    for pass in 0..2u64 {
        for off in (0..512 * 1024).step_by(LINE as usize) {
            accesses += 1;
            if pass == 0 && off % 256 == 0 {
                m.store(buf.start().add(off));
            } else {
                m.load(buf.start().add(off));
            }
        }
    }
    let tier_probe = |mm: &Machine| {
        let eng = mm.memory().mc().tier().expect("tier attached");
        (eng.stats(), eng.scm_stats(), eng.fault_stats(), eng.scm_ecc_stats().corrected)
    };
    let (_, _, f, corrected) = tier_probe(&m);
    if f.channel_kills == 0 {
        violations.push("degraded-snapshot-restore: no channel died before the snapshot".into());
    }
    if corrected == 0 {
        violations.push("degraded-snapshot-restore: no SCM flip was ever corrected".into());
    }

    let image = m.snapshot(&cfg);
    let mut restored = match Machine::restore(&cfg, &image) {
        Ok(r) => r,
        Err(e) => {
            violations.push(format!("degraded-snapshot-restore: restore failed: {e:?}"));
            let eng = m.memory().mc().tier().expect("tier attached");
            return collect(
                TierScenario::DegradedSnapshotRestore,
                &{ eng.clone() },
                m.now(),
                accesses,
                0,
                violations,
            );
        }
    };

    // Identical continuation on both machines, through live degradation.
    for mm in [&mut m, &mut restored] {
        for off in (0..512 * 1024).step_by(LINE as usize * 2) {
            mm.load(buf.start().add(off));
        }
    }
    accesses += 2 * (512 * 1024) / (LINE * 2);
    if m.now() != restored.now() {
        violations.push(format!(
            "degraded-snapshot-restore: continuation diverged ({} vs {} cycles)",
            m.now(),
            restored.now()
        ));
    }
    let (a, b) = (tier_probe(&m), tier_probe(&restored));
    if a != b {
        violations.push(format!(
            "degraded-snapshot-restore: tier counters diverged ({a:?} vs {b:?})"
        ));
    }
    if m.memory().stats().tier_faults != restored.memory().stats().tier_faults {
        violations.push("degraded-snapshot-restore: tier-fault NACK counts diverged".into());
    }
    if m.snapshot(&cfg) != restored.snapshot(&cfg) {
        violations.push("degraded-snapshot-restore: re-snapshots are not byte-identical".into());
    }

    let eng = m.memory().mc().tier().expect("tier attached").clone();
    collect(
        TierScenario::DegradedSnapshotRestore,
        &eng,
        m.now(),
        accesses,
        0,
        violations,
    )
}

/// SCM raw-bit-error asymmetry sweep: the same flat-mode access
/// sequence under a double-error fraction of 0‰, 500‰, and 1000‰.
/// SECDED corrects every single, detects every double, passes nothing
/// silently, and the detected count is monotone in the fraction.
pub fn run_ecc_asymmetry_sweep(seed: u64) -> TierOutcome {
    let mut violations = Vec::new();
    let mut accesses = 0u64;
    let mut cycles = 0u64;
    let mut detected = Vec::new();
    let mut engines = Vec::new();

    for permille in [0u32, 500, 1000] {
        let faults = FaultConfig {
            scm_flip: Trigger::EveryN { every: 2, phase: 0 },
            scm_double_permille: permille,
            ..FaultConfig::none()
        };
        let (mut eng, mut dram) = flat_engine(seed, faults);
        let mut t = 0;
        for i in 0..256u64 {
            accesses += 1;
            let addr = MAddr::new((1 << 16) + (i % 64) * LINE);
            match eng.access(&mut dram, addr, AccessKind::Load, LINE, t, false) {
                Ok(done) => t = done,
                Err(e) => {
                    violations.push(format!("ecc-asymmetry-sweep: healthy load failed: {e:?}"))
                }
            }
        }
        cycles += t;
        let e = eng.scm_ecc_stats();
        if e.silent != 0 {
            violations.push(format!(
                "ecc-asymmetry-sweep: {} silent flips at {permille}permille",
                e.silent
            ));
        }
        match permille {
            0 if e.corrected == 0 || e.detected_double != 0 => violations.push(format!(
                "ecc-asymmetry-sweep: all-singles point corrected {} detected {}",
                e.corrected, e.detected_double
            )),
            1000 if e.detected_double == 0 || e.corrected != 0 => violations.push(format!(
                "ecc-asymmetry-sweep: all-doubles point corrected {} detected {}",
                e.corrected, e.detected_double
            )),
            _ => {}
        }
        if e.recovery_cycles == 0 {
            violations.push(format!(
                "ecc-asymmetry-sweep: no recovery cycles attributed at {permille}permille"
            ));
        }
        detected.push(e.detected_double);
        engines.push(eng);
    }
    if !(detected[0] <= detected[1] && detected[1] <= detected[2]) {
        violations.push(format!(
            "ecc-asymmetry-sweep: detected doubles not monotone in the fraction: {detected:?}"
        ));
    }

    // The outcome aggregates all three sweep points; the last engine
    // carries the final counters and the earlier points are folded in.
    let mut out = collect(
        TierScenario::EccAsymmetrySweep,
        engines.last().expect("sweep ran"),
        cycles,
        accesses,
        0,
        violations,
    );
    for eng in &engines[..engines.len() - 1] {
        let e = eng.scm_ecc_stats();
        out.ecc_corrected += e.corrected;
        out.ecc_detected_double += e.detected_double;
        out.ecc_silent += e.silent;
        out.ecc_recovery_cycles += e.recovery_cycles;
        let s = eng.scm_stats();
        out.scm.reads += s.reads;
        out.scm.writes += s.writes;
        out.scm.bytes += s.bytes;
        out.scm.channel_wait += s.channel_wait;
        let t = eng.stats();
        out.tier.flat_dram += t.flat_dram;
        out.tier.flat_scm += t.flat_scm;
    }
    out
}

/// Bypass-mode parity: a cache-mode engine whose every DRAM channel has
/// been killed serves purely by SCM bypass — and for the same line
/// sequence performs exactly the SCM reads a healthy flat-mode
/// partition would, with zero typed errors and zero cache hits.
pub fn run_bypass_mode_parity(seed: u64) -> TierOutcome {
    let faults = FaultConfig {
        tier_fail: Trigger::EveryN { every: 1, phase: 0 },
        ..FaultConfig::none()
    };
    let (mut eng, mut dram) = cache_engine(seed, 1 << 20, 64, faults);
    let mut violations = Vec::new();
    let banks = small_dram_cfg().banks.min(64);

    // Preamble: with the trigger firing on every access, each touch
    // kills one channel until the whole DRAM front is dead.
    let mut t = 0;
    for i in 0..4 * banks {
        match eng.access(&mut dram, MAddr::new(0), AccessKind::Load, LINE, t, false) {
            Ok(done) => t = done,
            Err(e) => violations.push(format!("bypass-mode-parity: preamble failed: {e:?}")),
        }
        let _ = i;
        if eng.dead_banks().count_ones() as u64 == banks {
            break;
        }
    }
    if eng.dead_banks().count_ones() as u64 != banks {
        violations.push(format!(
            "bypass-mode-parity: only {} of {banks} channels died",
            eng.dead_banks().count_ones()
        ));
    }
    // Damage persists across a stats reset; from here every counter
    // reflects pure bypass operation. The injector's own bookkeeping is
    // part of the damage record and survives the reset, so measure the
    // parity run against its post-preamble baseline.
    eng.reset_stats();
    let base_bypass = eng.fault_stats().bypass_reads;

    let (mut flat, mut fdram) = flat_engine(seed, FaultConfig::none());
    let mut accesses = 0u64;
    let mut ft = 0;
    for pass in 0..2u64 {
        for line in 0..64u64 {
            let _ = pass;
            accesses += 2;
            if let Err(e) =
                eng.access(&mut dram, MAddr::new(line * LINE), AccessKind::Load, LINE, t, false)
            {
                violations.push(format!("bypass-mode-parity: bypass load failed: {e:?}"));
            }
            t += 1;
            // The flat engine serves the same line from its SCM partition.
            let faddr = MAddr::new((1 << 16) + line * LINE);
            match flat.access(&mut fdram, faddr, AccessKind::Load, LINE, ft, false) {
                Ok(done) => ft = done,
                Err(e) => violations.push(format!("bypass-mode-parity: flat load failed: {e:?}")),
            }
        }
    }

    let s = eng.stats();
    if s.dram_hits != 0 || s.dram_misses != 0 {
        violations.push(format!(
            "bypass-mode-parity: a dead cache still served {} hits / {} misses",
            s.dram_hits, s.dram_misses
        ));
    }
    let f = eng.fault_stats();
    if f.bypass_reads - base_bypass != 128 {
        violations.push(format!(
            "bypass-mode-parity: {} bypass reads for 128 loads",
            f.bypass_reads - base_bypass
        ));
    }
    if eng.scm_stats().reads != flat.scm_stats().reads {
        violations.push(format!(
            "bypass-mode-parity: bypass did {} SCM reads, flat did {}",
            eng.scm_stats().reads,
            flat.scm_stats().reads
        ));
    }

    collect(TierScenario::BypassModeParity, &eng, t + ft, accesses, 0, violations)
}

/// Runs one scenario under `seed`.
pub fn run_tier_case(s: TierScenario, seed: u64) -> TierOutcome {
    match s {
        TierScenario::ColdGatherStorm => run_cold_gather_storm(seed),
        TierScenario::WearOutScatterChurn => run_wear_out_scatter_churn(seed),
        TierScenario::TagCorruption => run_tag_corruption(seed),
        TierScenario::ChannelKillMidGather => run_channel_kill_mid_gather(seed),
        TierScenario::DegradedSnapshotRestore => run_degraded_snapshot_restore(seed),
        TierScenario::EccAsymmetrySweep => run_ecc_asymmetry_sweep(seed),
        TierScenario::BypassModeParity => run_bypass_mode_parity(seed),
    }
}

/// A shared tier-suite job for the supervised runner.
pub type TierJob = SharedJob<TierOutcome>;

/// Every scenario paired with its stable journal id, in deterministic
/// submission order.
pub fn tier_chaos_jobs(seed: u64) -> Vec<(String, TierJob)> {
    TierScenario::ALL
        .iter()
        .map(|&s| {
            let id = s.name().to_string();
            let job: TierJob = Arc::new(move || run_tier_case(s, seed));
            (id, job)
        })
        .collect()
}

impl TierOutcome {
    /// Serializes this case for `chaos_tier.json` and the run journal.
    pub fn to_json(&self) -> Json {
        case_json(self)
    }

    /// Rebuilds a case from [`TierOutcome::to_json`] output (the resume
    /// path); `None` if the shape is wrong.
    pub fn from_json(v: &Json) -> Option<Self> {
        let u = |obj: &Json, k: &str| obj.get(k).and_then(Json::as_u64);
        let tier = v.get("tier")?;
        let scm = v.get("scm")?;
        let fault = v.get("fault")?;
        let ecc = v.get("ecc")?;
        let violations = match v.get("violations")? {
            Json::Arr(items) => items
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(Self {
            scenario: v.get("scenario")?.as_str()?.to_string(),
            cycles: u(v, "cycles")?,
            accesses: u(v, "accesses")?,
            typed_faults: u(v, "typed_faults")?,
            tier: TierStats {
                dram_hits: u(tier, "dram_hits")?,
                dram_misses: u(tier, "dram_misses")?,
                writebacks: u(tier, "writebacks")?,
                lost_writebacks: u(tier, "lost_writebacks")?,
                fill_hits: u(tier, "fill_hits")?,
                fill_loads: u(tier, "fill_loads")?,
                flat_dram: u(tier, "flat_dram")?,
                flat_scm: u(tier, "flat_scm")?,
                degraded_rejects: u(tier, "degraded_rejects")?,
            },
            scm: ScmStats {
                reads: u(scm, "reads")?,
                writes: u(scm, "writes")?,
                bytes: u(scm, "bytes")?,
                channel_wait: u(scm, "channel_wait")?,
                wear_retirements: u(scm, "wear_retirements")?,
                dead_rejects: u(scm, "dead_rejects")?,
            },
            fault: TierFaultStats {
                tag_corruptions: u(fault, "tag_corruptions")?,
                tag_invalidations: u(fault, "tag_invalidations")?,
                channel_kills: u(fault, "channel_kills")?,
                bypass_reads: u(fault, "bypass_reads")?,
                bypass_writes: u(fault, "bypass_writes")?,
                lost_dirty_lines: u(fault, "lost_dirty_lines")?,
                recovery_cycles: u(fault, "recovery_cycles")?,
            },
            ecc_corrected: u(ecc, "corrected")?,
            ecc_detected_double: u(ecc, "detected_double")?,
            ecc_silent: u(ecc, "silent")?,
            ecc_recovery_cycles: u(ecc, "recovery_cycles")?,
            violations,
        })
    }
}

/// JSON for one tier case.
fn case_json(o: &TierOutcome) -> Json {
    let mut c = Json::obj();
    c.set("scenario", Json::Str(o.scenario.clone()));
    c.set("cycles", Json::UInt(o.cycles));
    c.set("accesses", Json::UInt(o.accesses));
    c.set("typed_faults", Json::UInt(o.typed_faults));
    let mut tier = Json::obj();
    tier.set("dram_hits", Json::UInt(o.tier.dram_hits));
    tier.set("dram_misses", Json::UInt(o.tier.dram_misses));
    tier.set("writebacks", Json::UInt(o.tier.writebacks));
    tier.set("lost_writebacks", Json::UInt(o.tier.lost_writebacks));
    tier.set("fill_hits", Json::UInt(o.tier.fill_hits));
    tier.set("fill_loads", Json::UInt(o.tier.fill_loads));
    tier.set("flat_dram", Json::UInt(o.tier.flat_dram));
    tier.set("flat_scm", Json::UInt(o.tier.flat_scm));
    tier.set("degraded_rejects", Json::UInt(o.tier.degraded_rejects));
    c.set("tier", tier);
    let mut scm = Json::obj();
    scm.set("reads", Json::UInt(o.scm.reads));
    scm.set("writes", Json::UInt(o.scm.writes));
    scm.set("bytes", Json::UInt(o.scm.bytes));
    scm.set("channel_wait", Json::UInt(o.scm.channel_wait));
    scm.set("wear_retirements", Json::UInt(o.scm.wear_retirements));
    scm.set("dead_rejects", Json::UInt(o.scm.dead_rejects));
    c.set("scm", scm);
    let mut fault = Json::obj();
    fault.set("tag_corruptions", Json::UInt(o.fault.tag_corruptions));
    fault.set("tag_invalidations", Json::UInt(o.fault.tag_invalidations));
    fault.set("channel_kills", Json::UInt(o.fault.channel_kills));
    fault.set("bypass_reads", Json::UInt(o.fault.bypass_reads));
    fault.set("bypass_writes", Json::UInt(o.fault.bypass_writes));
    fault.set("lost_dirty_lines", Json::UInt(o.fault.lost_dirty_lines));
    fault.set("recovery_cycles", Json::UInt(o.fault.recovery_cycles));
    c.set("fault", fault);
    let mut ecc = Json::obj();
    ecc.set("corrected", Json::UInt(o.ecc_corrected));
    ecc.set("detected_double", Json::UInt(o.ecc_detected_double));
    ecc.set("silent", Json::UInt(o.ecc_silent));
    ecc.set("recovery_cycles", Json::UInt(o.ecc_recovery_cycles));
    c.set("ecc", ecc);
    c.set(
        "violations",
        Json::Arr(o.violations.iter().map(|s| Json::Str(s.clone())).collect()),
    );
    c
}

/// Serializes a tier-suite run: schema `impulse-tier-chaos-v1`,
/// per-case counters, whole-run totals, and the flattened violation
/// list (`ok` is true iff it is empty).
pub fn tier_chaos_document(seed: u64, outcomes: &[TierOutcome]) -> Json {
    let mut doc = Json::obj();
    doc.set("schema", Json::Str("impulse-tier-chaos-v1".into()));
    doc.set("seed", Json::UInt(seed));
    doc.set("cases", Json::Arr(outcomes.iter().map(case_json).collect()));

    let sum = |f: fn(&TierOutcome) -> u64| outcomes.iter().map(f).sum::<u64>();
    let mut totals = Json::obj();
    totals.set("accesses", Json::UInt(sum(|o| o.accesses)));
    totals.set("typed_faults", Json::UInt(sum(|o| o.typed_faults)));
    totals.set("dram_hits", Json::UInt(sum(|o| o.tier.dram_hits)));
    totals.set("writebacks", Json::UInt(sum(|o| o.tier.writebacks)));
    totals.set(
        "lost_writebacks",
        Json::UInt(sum(|o| o.tier.lost_writebacks)),
    );
    totals.set(
        "degraded_rejects",
        Json::UInt(sum(|o| o.tier.degraded_rejects)),
    );
    totals.set("scm_reads", Json::UInt(sum(|o| o.scm.reads)));
    totals.set("scm_writes", Json::UInt(sum(|o| o.scm.writes)));
    totals.set(
        "wear_retirements",
        Json::UInt(sum(|o| o.scm.wear_retirements)),
    );
    totals.set("dead_rejects", Json::UInt(sum(|o| o.scm.dead_rejects)));
    totals.set(
        "tag_corruptions",
        Json::UInt(sum(|o| o.fault.tag_corruptions)),
    );
    totals.set("channel_kills", Json::UInt(sum(|o| o.fault.channel_kills)));
    totals.set(
        "bypass_reads",
        Json::UInt(sum(|o| o.fault.bypass_reads + o.fault.bypass_writes)),
    );
    totals.set("ecc_corrected", Json::UInt(sum(|o| o.ecc_corrected)));
    totals.set(
        "ecc_detected_double",
        Json::UInt(sum(|o| o.ecc_detected_double)),
    );
    totals.set("ecc_silent", Json::UInt(sum(|o| o.ecc_silent)));
    doc.set("totals", totals);

    let violations: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.violations.iter().cloned())
        .collect();
    doc.set(
        "violations",
        Json::Arr(violations.iter().map(|s| Json::Str(s.clone())).collect()),
    );
    doc.set("ok", Json::Bool(violations.is_empty()));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;

    #[test]
    fn cold_gather_storm_lives_in_the_fill_buffer() {
        let o = run_cold_gather_storm(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert_eq!(o.tier.fill_loads, 1024);
        assert_eq!(o.tier.fill_hits, 1024);
        assert_eq!(o.tier.dram_misses, 1, "only the demand probe installs");
    }

    #[test]
    fn wear_out_retires_then_goes_typed() {
        let o = run_wear_out_scatter_churn(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(o.scm.wear_retirements >= 3, "spares were consumed");
        assert!(o.typed_faults > 0, "dead lines surfaced as typed errors");
        assert!(o.tier.lost_writebacks > 0, "lost dirty data was counted");
    }

    #[test]
    fn tag_corruption_recovers_from_scm() {
        let o = run_tag_corruption(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(o.fault.tag_corruptions > 0);
        assert_eq!(o.fault.tag_corruptions, o.fault.tag_invalidations);
    }

    #[test]
    fn channel_kill_is_typed_in_flat_and_bypass_in_cache() {
        let o = run_channel_kill_mid_gather(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(o.typed_faults > 0, "flat gathers aborted typed");
        assert!(o.fault.bypass_reads > 0, "cache mode bypassed");
    }

    #[test]
    fn degraded_snapshot_resumes_bit_exactly() {
        let o = run_degraded_snapshot_restore(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(o.fault.channel_kills > 0, "snapshot was taken degraded");
        assert!(o.ecc_corrected > 0, "SCM flips flowed through SECDED");
    }

    #[test]
    fn ecc_sweep_is_never_silent() {
        let o = run_ecc_asymmetry_sweep(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert_eq!(o.ecc_silent, 0);
        assert!(o.ecc_corrected > 0 && o.ecc_detected_double > 0);
    }

    #[test]
    fn bypass_parity_matches_flat_scm_service() {
        let o = run_bypass_mode_parity(1999);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(o.fault.bypass_reads >= 128, "parity run plus preamble");
        assert_eq!(o.tier.dram_hits, 0);
    }

    #[test]
    fn outcomes_round_trip_through_json() {
        let o = run_wear_out_scatter_churn(3);
        let back = TierOutcome::from_json(&o.to_json()).expect("decode");
        assert_eq!(o, back);
    }

    #[test]
    fn tier_suite_is_deterministic_across_worker_counts() {
        let run = |workers| {
            let jobs: Vec<_> = tier_chaos_jobs(1999)
                .into_iter()
                .map(|(_, j)| move || j())
                .collect();
            let outcomes = runner::run_ordered(jobs, workers);
            format!("{:#}\n", tier_chaos_document(1999, &outcomes))
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(
            serial, parallel,
            "chaos_tier.json must not depend on workers"
        );
        assert!(serial.contains("impulse-tier-chaos-v1"));
        assert!(serial.contains("\"ok\": true"), "suite is violation-free");
    }
}
