//! Crash-safe run journal (`impulse-journal-v1`) and the resumable grid
//! driver built on it.
//!
//! As each experiment in a grid completes, the runner appends one JSONL
//! record — experiment id, master seed, and either the finished
//! artifacts (CSV row + compact JSON fragment) or a typed error string —
//! and `fsync`s the file, so a `SIGKILL` at any instant loses at most
//! the experiments that were in flight. Every line carries an FNV-64
//! checksum of its record; on recovery a truncated or corrupt tail
//! record is detected and **dropped**, never propagated into results.
//!
//! `--resume` replays the journal: completed experiments are skipped,
//! incomplete or failed ones are rerun, and the merged outputs are
//! byte-identical to an uninterrupted run — the journal stores exactly
//! the strings/JSON the final documents are assembled from, and the
//! [`Json`] formatter is text-stable through a parse/format cycle.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Mutex;

use impulse_obs::Json;
use impulse_types::snap::fnv64;
use impulse_types::{ExperimentKey, FxHashMap};

use crate::runner::{self, JobError, SharedJob, SuperviseOpts};

/// Journal record schema identifier.
pub const SCHEMA: &str = "impulse-journal-v1";

/// What a finished experiment contributes to the final documents.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArtifacts {
    /// The experiment's CSV row (or fully rendered table line).
    pub csv: String,
    /// The experiment's JSON fragment (stored compact in the journal).
    pub json: Json,
}

/// One journal entry: an experiment that finished — successfully or with
/// a typed error.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecord {
    /// Experiment id (the catalog name; unique within a grid).
    pub id: String,
    /// The master seed the grid ran under; records from a different seed
    /// are ignored on resume.
    pub seed: u64,
    /// Artifacts on success, the error's `Display` string on failure.
    pub outcome: Result<RunArtifacts, String>,
}

impl JournalRecord {
    /// The stable experiment identity for this record — the same
    /// `(config, seed)` digest the serve-mode result cache and the
    /// trace-capture file names use, so one hex key cross-references an
    /// experiment across all three artifacts.
    pub fn key(&self) -> ExperimentKey {
        ExperimentKey::from_id(&self.id, self.seed)
    }

    /// The record body as JSON (without the checksum envelope).
    pub fn to_json(&self) -> Json {
        let mut r = Json::obj();
        r.set("schema", Json::Str(SCHEMA.into()));
        r.set("id", Json::Str(self.id.clone()));
        r.set("seed", Json::UInt(self.seed));
        r.set("key", Json::Str(self.key().hex()));
        match &self.outcome {
            Ok(a) => {
                r.set("ok", Json::Bool(true));
                r.set("csv", Json::Str(a.csv.clone()));
                r.set("report", a.json.clone());
            }
            Err(e) => {
                r.set("ok", Json::Bool(false));
                r.set("error", Json::Str(e.clone()));
            }
        }
        r
    }

    /// Decodes a record body; `None` if the shape or schema is wrong.
    pub fn from_json(v: &Json) -> Option<Self> {
        if v.get("schema")?.as_str()? != SCHEMA {
            return None;
        }
        let id = v.get("id")?.as_str()?.to_string();
        let seed = v.get("seed")?.as_u64()?;
        // The key is derived from (id, seed); a mismatch means the line
        // was stitched together from two different records.
        if v.get("key")?.as_str()? != ExperimentKey::from_id(&id, seed).hex() {
            return None;
        }
        let outcome = match v.get("ok")? {
            Json::Bool(true) => Ok(RunArtifacts {
                csv: v.get("csv")?.as_str()?.to_string(),
                json: v.get("report")?.clone(),
            }),
            Json::Bool(false) => Err(v.get("error")?.as_str()?.to_string()),
            _ => return None,
        };
        Some(Self { id, seed, outcome })
    }

    /// Encodes the full journal line: `{"sum":<fnv64>,"record":{...}}`
    /// where `sum` covers the compact serialization of `record`.
    fn to_line(&self) -> String {
        let body = format!("{}", self.to_json());
        let mut line = Json::obj();
        line.set("sum", Json::UInt(fnv64(body.as_bytes())));
        line.set("record", self.to_json());
        format!("{line}")
    }

    /// Decodes and verifies one journal line; `None` for malformed JSON,
    /// a checksum mismatch, or a wrong schema — the corrupt-tail cases.
    fn from_line(line: &str) -> Option<Self> {
        let v = Json::parse(line).ok()?;
        let sum = v.get("sum")?.as_u64()?;
        let record = v.get("record")?;
        if fnv64(format!("{record}").as_bytes()) != sum {
            return None;
        }
        Self::from_json(record)
    }
}

/// An append-only, fsync-per-record journal writer.
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for appending, creating
    /// parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { file })
    }

    /// Appends one record and flushes it to stable storage before
    /// returning — the crash-safety contract: once `append` returns, a
    /// `SIGKILL` cannot lose the record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, rec: &JournalRecord) -> io::Result<()> {
        let mut line = rec.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// What [`load`] recovered from a journal file.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// Valid records, in file (append) order.
    pub records: Vec<JournalRecord>,
    /// Lines dropped as truncated or corrupt. Parsing stops at the first
    /// bad line: everything after a corrupt record is suspect.
    pub dropped: usize,
}

impl Recovered {
    /// Collapses to the authoritative record per experiment id:
    /// last-write-wins, and records from a different master seed are
    /// ignored (they belong to a different grid).
    pub fn latest_for_seed(&self, seed: u64) -> FxHashMap<String, JournalRecord> {
        let mut out = FxHashMap::default();
        for r in &self.records {
            if r.seed == seed {
                out.insert(r.id.clone(), r.clone());
            }
        }
        out
    }
}

/// Reads a journal file, dropping the truncated/corrupt tail. A missing
/// file recovers as empty — a fresh run.
///
/// # Errors
///
/// Propagates filesystem errors other than "not found".
pub fn load(path: &Path) -> io::Result<Recovered> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Recovered::default()),
        Err(e) => return Err(e),
    };
    let mut out = Recovered::default();
    let mut lines = BufReader::new(file).lines();
    for line in &mut lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match JournalRecord::from_line(&line) {
            Some(rec) => out.records.push(rec),
            None => {
                out.dropped = 1 + lines.count();
                break;
            }
        }
    }
    Ok(out)
}

/// Runs a named experiment grid with crash-safe journaling and resume.
///
/// * Fresh runs truncate any stale journal at `journal_path` first.
/// * With `resume`, journaled outcomes for the current seed are reused;
///   only missing or previously failed experiments run.
/// * Every completed job — success or typed failure — is appended and
///   fsync'd as it finishes, from whichever worker thread ran it.
/// * The returned list is in catalog order, mixing reused and fresh
///   outcomes, so callers assemble byte-identical final documents
///   however the run was interrupted.
///
/// # Errors
///
/// Propagates journal I/O errors.
pub fn run_resumable<T: Send + 'static>(
    catalog: Vec<(String, SharedJob<T>)>,
    seed: u64,
    workers: usize,
    opts: &SuperviseOpts,
    journal_path: &Path,
    resume: bool,
    to_artifacts: &(dyn Fn(&T) -> RunArtifacts + Sync),
) -> io::Result<Vec<(String, Result<RunArtifacts, String>)>> {
    let recovered = if resume {
        let r = load(journal_path)?;
        if r.dropped > 0 {
            eprintln!(
                "journal: dropped {} corrupt/truncated record(s) from {}",
                r.dropped,
                journal_path.display()
            );
        }
        r.latest_for_seed(seed)
    } else {
        if let Some(dir) = journal_path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        File::create(journal_path)?; // truncate stale journal
        FxHashMap::default()
    };

    let mut done: FxHashMap<String, Result<RunArtifacts, String>> = FxHashMap::default();
    let mut to_run: Vec<(String, SharedJob<T>)> = Vec::new();
    for (id, job) in catalog.iter() {
        match recovered.get(id) {
            // A journaled success is complete; failures rerun (the fault
            // may have been the host's, not the experiment's).
            Some(JournalRecord { outcome: Ok(a), .. }) => {
                done.insert(id.clone(), Ok(a.clone()));
            }
            _ => to_run.push((id.clone(), job.clone())),
        }
    }
    if resume && !to_run.is_empty() {
        eprintln!(
            "resume: {} of {} experiments already journaled, running {}",
            done.len(),
            catalog.len(),
            to_run.len()
        );
    }

    let journal = Mutex::new(Journal::append_to(journal_path)?);
    let io_error: Mutex<Option<io::Error>> = Mutex::new(None);
    let ids: Vec<String> = to_run.iter().map(|(id, _)| id.clone()).collect();
    let jobs: Vec<SharedJob<T>> = to_run.into_iter().map(|(_, j)| j).collect();
    let results = runner::run_supervised(jobs, workers, opts, &|i, res: &Result<T, JobError>| {
        let rec = JournalRecord {
            id: ids[i].clone(),
            seed,
            outcome: match res {
                Ok(v) => Ok(to_artifacts(v)),
                Err(e) => Err(e.to_string()),
            },
        };
        if let Err(e) = journal.lock().expect("journal lock").append(&rec) {
            io_error.lock().expect("io-error lock").get_or_insert(e);
        }
        eprintln!(
            "done: {}{}",
            rec.id,
            match &rec.outcome {
                Ok(_) => String::new(),
                Err(e) => format!(" [FAILED: {e}]"),
            }
        );
    });
    if let Some(e) = io_error.into_inner().expect("io-error lock") {
        return Err(e);
    }

    for (id, res) in ids.into_iter().zip(results) {
        let outcome = match &res {
            Ok(v) => Ok(to_artifacts(v)),
            Err(e) => Err(e.to_string()),
        };
        done.insert(id, outcome);
    }

    Ok(catalog
        .into_iter()
        .map(|(id, _)| {
            let outcome = done.remove(&id).expect("every catalog id has an outcome");
            (id, outcome)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "impulse-journal-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    fn ok_record(id: &str, seed: u64, csv: &str) -> JournalRecord {
        let mut j = Json::obj();
        j.set("name", Json::Str(id.into()));
        j.set("ratio", Json::Float(0.25));
        JournalRecord {
            id: id.into(),
            seed,
            outcome: Ok(RunArtifacts {
                csv: csv.into(),
                json: j,
            }),
        }
    }

    #[test]
    fn append_and_load_round_trip() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let recs = vec![
            ok_record("a", 7, "a,1,2"),
            JournalRecord {
                id: "b".into(),
                seed: 7,
                outcome: Err("job panicked: boom".into()),
            },
        ];
        let mut j = Journal::append_to(&path).expect("open");
        for r in &recs {
            j.append(r).expect("append");
        }
        let got = load(&path).expect("load");
        assert_eq!(got.records, recs);
        assert_eq!(got.dropped, 0);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn truncated_tail_record_is_dropped() {
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::append_to(&path).expect("open");
        j.append(&ok_record("a", 1, "a,1")).expect("append");
        j.append(&ok_record("b", 1, "b,2")).expect("append");
        // Simulate a crash mid-append: cut the last line in half.
        let text = std::fs::read_to_string(&path).expect("read");
        let cut = text.len() - text.lines().last().expect("line").len() / 2;
        std::fs::write(&path, &text[..cut]).expect("truncate");
        let got = load(&path).expect("load");
        assert_eq!(got.records.len(), 1, "only the intact record survives");
        assert_eq!(got.records[0].id, "a");
        assert_eq!(got.dropped, 1);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn checksum_mismatch_is_dropped() {
        let path = temp_path("checksum");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::append_to(&path).expect("open");
        j.append(&ok_record("a", 1, "a,1")).expect("append");
        j.append(&ok_record("b", 1, "b,2")).expect("append");
        // Corrupt one byte inside the last record's payload, keeping the
        // line valid JSON (flip a digit of the seed).
        let text = std::fs::read_to_string(&path).expect("read");
        let corrupted = text.replacen("\"csv\":\"b,2\"", "\"csv\":\"b,9\"", 1);
        assert_ne!(text, corrupted, "corruption applied");
        std::fs::write(&path, corrupted).expect("write");
        let got = load(&path).expect("load");
        assert_eq!(got.records.len(), 1);
        assert_eq!(got.records[0].id, "a");
        assert_eq!(got.dropped, 1);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn duplicate_ids_last_write_wins_and_seed_filters() {
        let path = temp_path("dupes");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::append_to(&path).expect("open");
        j.append(&ok_record("a", 1, "a,old")).expect("append");
        j.append(&ok_record("a", 1, "a,new")).expect("append");
        j.append(&ok_record("b", 2, "b,other-seed"))
            .expect("append");
        let got = load(&path).expect("load");
        let latest = got.latest_for_seed(1);
        assert_eq!(latest.len(), 1, "other-seed record is ignored");
        let a = latest.get("a").expect("a present");
        assert_eq!(a.outcome.as_ref().expect("ok").csv, "a,new");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn missing_journal_is_a_fresh_run() {
        let got = load(Path::new("/nonexistent/impulse-journal")).expect("load");
        assert!(got.records.is_empty());
        assert_eq!(got.dropped, 0);
    }

    #[test]
    fn key_field_matches_experiment_identity_and_is_verified() {
        let rec = ok_record("fig1/impulse", 42, "row");
        let body = rec.to_json();
        assert_eq!(
            body.get("key").expect("key").as_str().expect("str"),
            ExperimentKey::from_id("fig1/impulse", 42).hex()
        );
        // A record whose key disagrees with (id, seed) is rejected even
        // when the rest of the body parses: forge a body carrying some
        // other experiment's key, wrapped in a fresh (valid) envelope.
        let mut forged = Json::obj();
        forged.set("schema", Json::Str(SCHEMA.into()));
        forged.set("id", Json::Str("fig1/impulse".into()));
        forged.set("seed", Json::UInt(42));
        forged.set("key", Json::Str(ExperimentKey::from_id("other", 42).hex()));
        forged.set("ok", Json::Bool(false));
        forged.set("error", Json::Str("x".into()));
        assert_eq!(JournalRecord::from_json(&forged), None);
        let mut line = Json::obj();
        line.set("sum", Json::UInt(fnv64(format!("{forged}").as_bytes())));
        line.set("record", forged);
        assert_eq!(JournalRecord::from_line(&format!("{line}")), None);
    }

    #[test]
    fn error_record_round_trips_display_string() {
        let rec = JournalRecord {
            id: "x".into(),
            seed: 3,
            outcome: Err("job exceeded its 250 ms deadline".into()),
        };
        let line = rec.to_line();
        let back = JournalRecord::from_line(&line).expect("parses");
        assert_eq!(back, rec);
    }

    #[test]
    fn run_resumable_skips_completed_and_reruns_failed() {
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);
        let calls = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let catalog = |calls: &Arc<std::sync::atomic::AtomicUsize>| {
            ["a", "b", "c"]
                .iter()
                .map(|&id| {
                    let calls = calls.clone();
                    let job: SharedJob<String> = Arc::new(move || {
                        calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        format!("{id}-value")
                    });
                    (id.to_string(), job)
                })
                .collect::<Vec<_>>()
        };
        let to_art = |v: &String| RunArtifacts {
            csv: v.clone(),
            json: Json::Str(v.clone()),
        };

        // Seed the journal with: "a" complete, "b" failed, "c" missing.
        let mut j = Journal::append_to(&path).expect("open");
        j.append(&ok_record("a", 5, "a-journaled")).expect("append");
        j.append(&JournalRecord {
            id: "b".into(),
            seed: 5,
            outcome: Err("job panicked: boom".into()),
        })
        .expect("append");

        let out = run_resumable(
            catalog(&calls),
            5,
            2,
            &SuperviseOpts::default(),
            &path,
            true,
            &to_art,
        )
        .expect("run");
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            2,
            "only b (failed) and c (missing) ran"
        );
        assert_eq!(out[0].0, "a");
        assert_eq!(out[0].1.as_ref().expect("ok").csv, "a-journaled");
        assert_eq!(out[1].1.as_ref().expect("ok").csv, "b-value");
        assert_eq!(out[2].1.as_ref().expect("ok").csv, "c-value");

        // A fresh (non-resume) run truncates and reruns everything.
        let out = run_resumable(
            catalog(&calls),
            5,
            1,
            &SuperviseOpts::default(),
            &path,
            false,
            &to_art,
        )
        .expect("run");
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 5);
        assert_eq!(out[0].1.as_ref().expect("ok").csv, "a-value");
        let reloaded = load(&path).expect("load");
        assert_eq!(reloaded.records.len(), 3, "stale journal was truncated");
        std::fs::remove_file(&path).expect("cleanup");
    }
}
