//! The `run_all` experiment catalog as self-contained jobs.
//!
//! Each experiment owns everything it needs (configs, shared read-only
//! pattern data behind `Arc`) and builds its own
//! [`Machine`], so the jobs are independent and
//! safe to fan across threads with [`crate::runner`]. The *simulated*
//! cycle counts are a pure function of each experiment's own inputs;
//! host-side scheduling cannot perturb them, which is what lets
//! `results.csv` and `results/run_all.json` stay byte-identical between
//! serial and parallel runs (asserted by `tests/determinism.rs`).

use std::sync::Arc;

use crate::journal::RunArtifacts;
use crate::runner::SharedJob;

use impulse_obs::Json;
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_workloads::{
    ChannelFilter, DbScan, DbVariant, Diagonal, DiagonalVariant, IpcGather, IpcVariant, Lu,
    LuVariant, MediaVariant, Mmp, MmpParams, MmpVariant, Smvp, SmvpVariant, SparsePattern,
    TlbStress, TlbVariant, Transpose, TransposeVariant,
};

/// One independent experiment: a name and a job producing its report.
/// The job is shared (`Fn`, not `FnOnce`) so the supervised runner can
/// retry it after a panic or timeout.
pub struct Experiment {
    name: String,
    job: SharedJob<Report>,
}

impl Experiment {
    fn new(name: String, job: impl Fn() -> Report + Send + Sync + 'static) -> Self {
        Self {
            name,
            job: Arc::new(job),
        }
    }

    /// The experiment's report name (`table1/...`, `fig1/...`, ...),
    /// known before the run for labels and filtering.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the experiment to completion.
    pub fn run(&self) -> Report {
        (self.job)()
    }

    /// Decomposes into the (id, shared job) pair the resumable grid
    /// driver consumes.
    pub fn into_job(self) -> (String, SharedJob<Report>) {
        (self.name, self.job)
    }
}

/// The default master seed for the `run_all` catalog (kept equal to the
/// historical sparse-pattern seed so default outputs are unchanged).
pub const DEFAULT_SEED: u64 = 0x00c9_a15e;

/// Builds the full `run_all` experiment list (24 experiments at quick
/// scale), in the canonical CSV/JSON row order. `seed` feeds every
/// seeded input: the table-1 sparse pattern directly and the database
/// scan's key salt via XOR.
pub fn run_all_experiments(seed: u64) -> Vec<Experiment> {
    let mut out = Vec::new();

    // Table 1 cells.
    let pattern = Arc::new(SparsePattern::generate(14_000, 24, seed));
    for (variant, mc_pf, l1_pf) in [
        (SmvpVariant::Conventional, false, false),
        (SmvpVariant::Conventional, true, true),
        (SmvpVariant::ScatterGather, false, false),
        (SmvpVariant::ScatterGather, true, false),
        (SmvpVariant::ScatterGather, true, true),
        (SmvpVariant::Recolored, false, false),
        (SmvpVariant::Recolored, true, true),
    ] {
        let pattern = pattern.clone();
        let name = format!("table1/{}/mc={mc_pf}/l1={l1_pf}", variant.name());
        out.push(Experiment::new(name.clone(), move || {
            let cfg = SystemConfig::paint().with_prefetch(mc_pf, l1_pf);
            let mut m = Machine::new(&cfg);
            let w = Smvp::setup(&mut m, pattern.clone(), variant).expect("smvp");
            w.run(&mut m, 1);
            m.report(name.clone())
        }));
    }

    // Table 2 cells.
    for variant in MmpVariant::ALL {
        let name = format!("table2/{}", variant.name());
        out.push(Experiment::new(name.clone(), move || {
            let mut m = Machine::new(&SystemConfig::paint());
            let mut w = Mmp::setup(&mut m, MmpParams { n: 192, tile: 32 }, variant).expect("mmp");
            w.run(&mut m).expect("mmp run");
            m.report(name.clone())
        }));
    }

    // Tiled LU decomposition.
    for variant in [LuVariant::Conventional, LuVariant::TileRemap] {
        let name = format!("lu/{}", variant.name());
        out.push(Experiment::new(name.clone(), move || {
            let mut m = Machine::new(&SystemConfig::paint());
            let mut w = Lu::setup(&mut m, 128, 32, variant).expect("lu");
            w.run(&mut m).expect("lu run");
            m.report(name.clone())
        }));
    }

    // Figure 1.
    for variant in [DiagonalVariant::Conventional, DiagonalVariant::Remapped] {
        let name = format!("fig1/{}", variant.name());
        out.push(Experiment::new(name.clone(), move || {
            let mut m = Machine::new(&SystemConfig::paint());
            let d = Diagonal::setup(&mut m, 2048, variant).expect("diag");
            m.reset_stats();
            d.run(&mut m, 4);
            m.report(name.clone())
        }));
    }

    // Transpose.
    for variant in [TransposeVariant::Conventional, TransposeVariant::Remapped] {
        let name = format!("transpose/{}", variant.name());
        out.push(Experiment::new(name.clone(), move || {
            let mut m = Machine::new(&SystemConfig::paint());
            let w = Transpose::setup(&mut m, 512, variant).expect("transpose");
            m.reset_stats();
            w.column_reduce(&mut m);
            m.report(name.clone())
        }));
    }

    // Superpages.
    for variant in [TlbVariant::BasePages, TlbVariant::Superpages] {
        let name = format!("superpage/{}", variant.name());
        out.push(Experiment::new(name.clone(), move || {
            let mut m = Machine::new(&SystemConfig::paint());
            let w = TlbStress::setup(&mut m, 8, 64, variant).expect("tlb");
            m.reset_stats();
            w.sweep(&mut m, 8);
            m.report(name.clone())
        }));
    }

    // Database selection scan.
    for variant in [DbVariant::Conventional, DbVariant::ImpulseGather] {
        let name = format!("dbscan/{}", variant.name());
        out.push(Experiment::new(name.clone(), move || {
            let mut m = Machine::new(&SystemConfig::paint().with_prefetch(true, false));
            let w = DbScan::setup(&mut m, 1 << 18, 64, 1 << 16, seed ^ 0xdb, variant).expect("db");
            m.reset_stats();
            w.fetch(&mut m);
            m.report(name.clone())
        }));
    }

    // Multimedia channel extraction.
    for variant in [MediaVariant::Conventional, MediaVariant::ChannelRemap] {
        let name = format!("media/{}", variant.name());
        out.push(Experiment::new(name.clone(), move || {
            let mut m = Machine::new(&SystemConfig::paint().with_prefetch(true, false));
            let w = ChannelFilter::setup(&mut m, 1 << 20, 3, variant).expect("media");
            m.reset_stats();
            w.filter(&mut m);
            m.report(name.clone())
        }));
    }

    // IPC.
    for variant in [IpcVariant::SoftwareGather, IpcVariant::ImpulseGather] {
        let name = format!("ipc/{}", variant.name());
        out.push(Experiment::new(name.clone(), move || {
            let mut m = Machine::new(&SystemConfig::paint());
            let w = IpcGather::setup(&mut m, 8, 4096, 64, variant).expect("ipc");
            m.reset_stats();
            for _ in 0..64 {
                w.send(&mut m);
            }
            m.report(name.clone())
        }));
    }

    out
}

/// The journal artifacts for one report: its exact CSV row and compact
/// JSON fragment — precisely the strings the final documents are
/// assembled from, so resumed and uninterrupted runs emit identical
/// bytes. Asserts the attribution invariant before anything is recorded.
///
/// # Panics
///
/// Panics if the report's attribution stages do not sum to its demand
/// cycles.
pub fn report_artifacts(r: &Report) -> RunArtifacts {
    let demand = r.mem.load_cycles + r.mem.store_cycles;
    assert_eq!(
        r.attr.total(),
        demand,
        "{}: attribution stages sum to {} but demand cycles are {demand}",
        r.name,
        r.attr.total(),
    );
    RunArtifacts {
        csv: r.csv_row(),
        json: r.to_json(),
    }
}

/// Assembles the final CSV text (header plus one row per successful
/// experiment, in catalog order) from resumable-run outcomes. Failed
/// experiments contribute no row.
pub fn csv_from_outcomes(outcomes: &[(String, Result<RunArtifacts, String>)]) -> String {
    let mut csv = String::from(Report::csv_header());
    csv.push('\n');
    for (_, outcome) in outcomes {
        if let Ok(a) = outcome {
            csv.push_str(&a.csv);
            csv.push('\n');
        }
    }
    csv
}

/// Assembles the `impulse-run-all-v1` JSON document from resumable-run
/// outcomes: report fragments in catalog order, the master seed, and a
/// `failed` array of `{name, error}` for experiments that produced no
/// report.
pub fn document_from_outcomes(
    seed: u64,
    outcomes: &[(String, Result<RunArtifacts, String>)],
) -> Json {
    let mut reports = Vec::with_capacity(outcomes.len());
    let mut failed = Vec::new();
    for (id, outcome) in outcomes {
        match outcome {
            Ok(a) => reports.push(a.json.clone()),
            Err(e) => {
                let mut f = Json::obj();
                f.set("name", Json::Str(id.clone()));
                f.set("error", Json::Str(e.clone()));
                failed.push(f);
            }
        }
    }
    let mut root = Json::obj();
    root.set("schema", Json::Str("impulse-run-all-v1".into()));
    root.set("seed", Json::UInt(seed));
    root.set("reports", Json::Arr(reports));
    root.set("failed", Json::Arr(failed));
    root
}

/// Bundles experiment reports into one JSON document (schema
/// `impulse-run-all-v1`) stamped with the master seed — the
/// all-successful special case of [`document_from_outcomes`].
///
/// # Panics
///
/// Panics if any report's attribution stages do not sum to its demand
/// cycles.
pub fn json_document(seed: u64, reports: &[Report]) -> Json {
    let outcomes: Vec<(String, Result<RunArtifacts, String>)> = reports
        .iter()
        .map(|r| (r.name.clone(), Ok(report_artifacts(r))))
        .collect();
    document_from_outcomes(seed, &outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_stable() {
        let exps = run_all_experiments(DEFAULT_SEED);
        assert_eq!(exps.len(), 24);
        let names: std::collections::HashSet<&str> = exps.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), exps.len(), "duplicate experiment names");
        assert_eq!(exps[0].name(), "table1/conventional/mc=false/l1=false");
        assert_eq!(exps[23].name(), "ipc/impulse no-copy gather");
    }
}
