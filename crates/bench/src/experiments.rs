//! The `run_all` experiment catalog as self-contained jobs.
//!
//! Each experiment owns everything it needs (configs, shared read-only
//! pattern data behind `Arc`) and builds its own
//! [`Machine`], so the jobs are independent and
//! safe to fan across threads with [`crate::runner`]. The *simulated*
//! cycle counts are a pure function of each experiment's own inputs;
//! host-side scheduling cannot perturb them, which is what lets
//! `results.csv` and `results/run_all.json` stay byte-identical between
//! serial and parallel runs (asserted by `tests/determinism.rs`).

use std::sync::Arc;

use crate::journal::RunArtifacts;
use crate::runner::SharedJob;

use impulse_obs::{Json, SketchConfig};
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_types::TierPolicy;
use impulse_workloads::{
    ChannelFilter, DbScan, DbVariant, Diagonal, DiagonalVariant, IpcGather, IpcVariant, Lu,
    LuVariant, MediaVariant, Mmp, MmpParams, MmpVariant, Smvp, SmvpVariant, SparsePattern,
    TlbStress, TlbVariant, Transpose, TransposeVariant,
};

/// One independent experiment: a name and a job producing its report.
/// The job is shared (`Fn`, not `FnOnce`) so the supervised runner can
/// retry it after a panic or timeout.
pub struct Experiment {
    name: String,
    job: SharedJob<Report>,
}

impl Experiment {
    fn new(name: String, job: impl Fn() -> Report + Send + Sync + 'static) -> Self {
        Self {
            name,
            job: Arc::new(job),
        }
    }

    /// The experiment's report name (`table1/...`, `fig1/...`, ...),
    /// known before the run for labels and filtering.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the experiment to completion.
    pub fn run(&self) -> Report {
        (self.job)()
    }

    /// Decomposes into the (id, shared job) pair the resumable grid
    /// driver consumes.
    pub fn into_job(self) -> (String, SharedJob<Report>) {
        (self.name, self.job)
    }
}

/// The default master seed for the `run_all` catalog (kept equal to the
/// historical sparse-pattern seed so default outputs are unchanged).
pub const DEFAULT_SEED: u64 = 0x00c9_a15e;

/// Observability switches applied uniformly to every catalog
/// experiment: the MC flight-recorder capacity, the optional hotness
/// sketch, and how many hottest lines each heatmap export carries.
///
/// [`ObsSpec::off`] is the zero-cost default used by the plain
/// [`run_all_experiments`] catalog; the `trace` binary turns recording
/// on with [`ObsSpec::recording`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsSpec {
    /// Flight-recorder ring capacity in events (0 disables recording).
    pub flight_capacity: usize,
    /// Hotness-sketch configuration (`None` disables the sketch).
    pub sketch: Option<SketchConfig>,
    /// Entries per heatmap `hot.entries` export.
    pub top_k: usize,
}

impl ObsSpec {
    /// All observability disabled — the configuration the headline
    /// benchmarks run with.
    pub fn off() -> Self {
        Self {
            flight_capacity: 0,
            sketch: None,
            top_k: 32,
        }
    }

    /// Flight recording plus hotness telemetry enabled.
    pub fn recording(flight_capacity: usize, sketch: SketchConfig, top_k: usize) -> Self {
        Self {
            flight_capacity,
            sketch: Some(sketch),
            top_k,
        }
    }

    /// Whether any recording is on (controls whether jobs export
    /// captures and heatmaps).
    pub fn enabled(&self) -> bool {
        self.flight_capacity > 0 || self.sketch.is_some()
    }

    fn apply(self, cfg: SystemConfig) -> SystemConfig {
        let cfg = cfg.with_flight(self.flight_capacity);
        match self.sketch {
            Some(s) => cfg.with_hotness(s),
            None => cfg,
        }
    }
}

/// Everything one observed experiment produces: the usual [`Report`]
/// plus the encoded `impulse-trace-v1` capture and the
/// `impulse-heatmap-v1` export (both empty/null when the job ran with
/// [`ObsSpec::off`]).
#[derive(Clone, Debug)]
pub struct TraceOutcome {
    /// The experiment's report, exactly as the plain catalog produces.
    pub report: Report,
    /// Encoded flight capture (empty when recording was disabled).
    pub capture: Vec<u8>,
    /// Heatmap document (`Json::Null` when recording was disabled).
    pub heatmap: Json,
}

/// One catalog experiment whose job also exports observability
/// artifacts. The plain [`Experiment`] catalog is a thin projection of
/// this (dropping capture and heatmap).
pub struct TracedExperiment {
    name: String,
    job: SharedJob<TraceOutcome>,
}

impl TracedExperiment {
    fn new(name: String, job: impl Fn() -> TraceOutcome + Send + Sync + 'static) -> Self {
        Self {
            name,
            job: Arc::new(job),
        }
    }

    /// The experiment's report name, known before the run.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the experiment to completion.
    pub fn run(&self) -> TraceOutcome {
        (self.job)()
    }

    /// Decomposes into the (id, shared job) pair the resumable grid
    /// driver consumes.
    pub fn into_job(self) -> (String, SharedJob<TraceOutcome>) {
        (self.name, self.job)
    }
}

/// Collects the machine's report and (when `obs` is recording) its
/// flight capture and heatmap into a [`TraceOutcome`].
fn finish(m: &Machine, name: &str, obs: ObsSpec) -> TraceOutcome {
    let report = m.report(name.to_string());
    if !obs.enabled() {
        return TraceOutcome {
            report,
            capture: Vec::new(),
            heatmap: Json::Null,
        };
    }
    let mc = m.memory().mc();
    TraceOutcome {
        report,
        capture: mc.flight().map(|f| f.encode()).unwrap_or_default(),
        heatmap: mc.heatmap_json(obs.top_k),
    }
}

/// One catalog experiment in factored form: its base configuration and
/// the workload-driving closure, separated so every execution backend
/// (direct, observed/tracing, record-then-replay) runs the *same*
/// definition. The drive closure performs setup and the measured run
/// against a machine the backend built; the backend then collects
/// `machine.report(name)` (plus whatever artifacts it owns).
pub struct CatalogEntry {
    name: String,
    cfg: SystemConfig,
    drive: Arc<dyn Fn(&mut Machine) + Send + Sync>,
}

impl CatalogEntry {
    fn new(
        name: String,
        cfg: SystemConfig,
        drive: impl Fn(&mut Machine) + Send + Sync + 'static,
    ) -> Self {
        Self {
            name,
            cfg,
            drive: Arc::new(drive),
        }
    }

    /// The experiment's report name, known before the run.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base configuration (before any observability is applied).
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs the workload (setup + measured phase) against `m`, which
    /// must have been built from [`CatalogEntry::config`] (possibly
    /// with observability applied).
    pub fn drive(&self, m: &mut Machine) {
        (self.drive)(m);
    }

    /// The same experiment under a different memory organisation.
    /// [`TierPolicy::None`] leaves the catalogued configuration
    /// untouched — it never strips a tier from the `tier/...` cells —
    /// and an already-tiered cell keeps its own organisation (a
    /// re-tier would re-derive the DRAM front from the *tiered*
    /// capacity and shrink the visible space out from under the
    /// workload).
    #[must_use]
    pub fn with_tier(mut self, tier: TierPolicy) -> Self {
        if tier != TierPolicy::None && self.cfg.tier.policy == TierPolicy::None {
            self.cfg = self.cfg.with_tier(tier);
        }
        self
    }
}

/// The full `run_all` catalog (28 experiments at quick scale) in
/// factored form, in the canonical CSV/JSON row order. `seed` feeds
/// every seeded input: the table-1 sparse pattern directly and the
/// database scan's key salt via XOR.
pub fn catalog_entries(seed: u64) -> Vec<CatalogEntry> {
    let mut out = Vec::new();

    // Table 1 cells.
    let pattern = Arc::new(SparsePattern::generate(14_000, 24, seed));
    for (variant, mc_pf, l1_pf) in [
        (SmvpVariant::Conventional, false, false),
        (SmvpVariant::Conventional, true, true),
        (SmvpVariant::ScatterGather, false, false),
        (SmvpVariant::ScatterGather, true, false),
        (SmvpVariant::ScatterGather, true, true),
        (SmvpVariant::Recolored, false, false),
        (SmvpVariant::Recolored, true, true),
    ] {
        let pattern = pattern.clone();
        out.push(CatalogEntry::new(
            format!("table1/{}/mc={mc_pf}/l1={l1_pf}", variant.name()),
            SystemConfig::paint().with_prefetch(mc_pf, l1_pf),
            move |m| {
                let w = Smvp::setup(m, pattern.clone(), variant).expect("smvp");
                w.run(m, 1);
            },
        ));
    }

    // Table 2 cells.
    for variant in MmpVariant::ALL {
        out.push(CatalogEntry::new(
            format!("table2/{}", variant.name()),
            SystemConfig::paint(),
            move |m| {
                let mut w = Mmp::setup(m, MmpParams { n: 192, tile: 32 }, variant).expect("mmp");
                w.run(m).expect("mmp run");
            },
        ));
    }

    // Tiled LU decomposition.
    for variant in [LuVariant::Conventional, LuVariant::TileRemap] {
        out.push(CatalogEntry::new(
            format!("lu/{}", variant.name()),
            SystemConfig::paint(),
            move |m| {
                let mut w = Lu::setup(m, 128, 32, variant).expect("lu");
                w.run(m).expect("lu run");
            },
        ));
    }

    // Figure 1.
    for variant in [DiagonalVariant::Conventional, DiagonalVariant::Remapped] {
        out.push(CatalogEntry::new(
            format!("fig1/{}", variant.name()),
            SystemConfig::paint(),
            move |m| {
                let d = Diagonal::setup(m, 2048, variant).expect("diag");
                m.reset_stats();
                d.run(m, 4);
            },
        ));
    }

    // Transpose.
    for variant in [TransposeVariant::Conventional, TransposeVariant::Remapped] {
        out.push(CatalogEntry::new(
            format!("transpose/{}", variant.name()),
            SystemConfig::paint(),
            move |m| {
                let w = Transpose::setup(m, 512, variant).expect("transpose");
                m.reset_stats();
                w.column_reduce(m);
            },
        ));
    }

    // Superpages.
    for variant in [TlbVariant::BasePages, TlbVariant::Superpages] {
        out.push(CatalogEntry::new(
            format!("superpage/{}", variant.name()),
            SystemConfig::paint(),
            move |m| {
                let w = TlbStress::setup(m, 8, 64, variant).expect("tlb");
                m.reset_stats();
                w.sweep(m, 8);
            },
        ));
    }

    // Database selection scan.
    for variant in [DbVariant::Conventional, DbVariant::ImpulseGather] {
        out.push(CatalogEntry::new(
            format!("dbscan/{}", variant.name()),
            SystemConfig::paint().with_prefetch(true, false),
            move |m| {
                let w = DbScan::setup(m, 1 << 18, 64, 1 << 16, seed ^ 0xdb, variant).expect("db");
                m.reset_stats();
                w.fetch(m);
            },
        ));
    }

    // Multimedia channel extraction.
    for variant in [MediaVariant::Conventional, MediaVariant::ChannelRemap] {
        out.push(CatalogEntry::new(
            format!("media/{}", variant.name()),
            SystemConfig::paint().with_prefetch(true, false),
            move |m| {
                let w = ChannelFilter::setup(m, 1 << 20, 3, variant).expect("media");
                m.reset_stats();
                w.filter(m);
            },
        ));
    }

    // IPC.
    for variant in [IpcVariant::SoftwareGather, IpcVariant::ImpulseGather] {
        out.push(CatalogEntry::new(
            format!("ipc/{}", variant.name()),
            SystemConfig::paint(),
            move |m| {
                let w = IpcGather::setup(m, 8, 4096, 64, variant).expect("ipc");
                m.reset_stats();
                for _ in 0..64 {
                    w.send(m);
                }
            },
        ));
    }

    // Hybrid-tier grid: the remapped transpose across all three tier
    // policies (plain DRAM, address-partitioned flat, DRAM cache over
    // SCM), plus a cache-mode gather cell that drives the MC-side fill
    // buffer with cold SCM lines. Built on `paint_small` so the
    // cache-mode DRAM front (1/16 of installed) is small enough for the
    // working sets to spill into real SCM traffic.
    for policy in TierPolicy::ALL {
        out.push(CatalogEntry::new(
            format!("tier/{}/transpose", policy.name()),
            SystemConfig::paint_small().with_tier(policy),
            move |m| {
                let w = Transpose::setup(m, 512, TransposeVariant::Remapped).expect("transpose");
                m.reset_stats();
                w.column_reduce(m);
            },
        ));
    }
    out.push(CatalogEntry::new(
        "tier/cache/dbscan-gather".to_string(),
        SystemConfig::paint_small()
            .with_prefetch(true, false)
            .with_tier(TierPolicy::Cache),
        move |m| {
            let w =
                DbScan::setup(m, 1 << 18, 64, 1 << 16, seed ^ 0xdb, DbVariant::ImpulseGather)
                    .expect("db");
            m.reset_stats();
            w.fetch(m);
        },
    ));

    out
}

/// Builds the full `run_all` experiment list (28 experiments at quick
/// scale), in the canonical CSV/JSON row order. `seed` feeds every
/// seeded input: the table-1 sparse pattern directly and the database
/// scan's key salt via XOR.
pub fn run_all_experiments(seed: u64) -> Vec<Experiment> {
    run_all_experiments_obs(seed, ObsSpec::off())
        .into_iter()
        .map(|t| {
            let (name, job) = t.into_job();
            Experiment::new(name, move || job().report)
        })
        .collect()
}

/// The same 28-experiment catalog with observability applied to every
/// machine: each job's [`SystemConfig`] goes through `obs` before the
/// machine is built, and the job returns the capture and heatmap next
/// to the report. With [`ObsSpec::off`] the simulated results are
/// identical to [`run_all_experiments`] — recording never perturbs
/// simulated time.
pub fn run_all_experiments_obs(seed: u64, obs: ObsSpec) -> Vec<TracedExperiment> {
    catalog_entries(seed)
        .into_iter()
        .map(|entry| {
            let name = entry.name().to_string();
            TracedExperiment::new(name.clone(), move || {
                let cfg = obs.apply(entry.config().clone());
                let mut m = Machine::new(&cfg);
                entry.drive(&mut m);
                finish(&m, &name, obs)
            })
        })
        .collect()
}

/// The journal artifacts for one report: its exact CSV row and compact
/// JSON fragment — precisely the strings the final documents are
/// assembled from, so resumed and uninterrupted runs emit identical
/// bytes. Asserts the attribution invariant before anything is recorded.
///
/// # Panics
///
/// Panics if the report's attribution stages do not sum to its demand
/// cycles.
pub fn report_artifacts(r: &Report) -> RunArtifacts {
    let demand = r.mem.load_cycles + r.mem.store_cycles;
    assert_eq!(
        r.attr.total(),
        demand,
        "{}: attribution stages sum to {} but demand cycles are {demand}",
        r.name,
        r.attr.total(),
    );
    RunArtifacts {
        csv: r.csv_row(),
        json: r.to_json(),
    }
}

/// Assembles the final CSV text (header plus one row per successful
/// experiment, in catalog order) from resumable-run outcomes. Failed
/// experiments contribute no row.
pub fn csv_from_outcomes(outcomes: &[(String, Result<RunArtifacts, String>)]) -> String {
    let mut csv = String::from(Report::csv_header());
    csv.push('\n');
    for (_, outcome) in outcomes {
        if let Ok(a) = outcome {
            csv.push_str(&a.csv);
            csv.push('\n');
        }
    }
    csv
}

/// Assembles the `impulse-run-all-v1` JSON document from resumable-run
/// outcomes: report fragments in catalog order, the master seed, and a
/// `failed` array of `{name, error}` for experiments that produced no
/// report.
pub fn document_from_outcomes(
    seed: u64,
    outcomes: &[(String, Result<RunArtifacts, String>)],
) -> Json {
    let mut reports = Vec::with_capacity(outcomes.len());
    let mut failed = Vec::new();
    for (id, outcome) in outcomes {
        match outcome {
            Ok(a) => reports.push(a.json.clone()),
            Err(e) => {
                let mut f = Json::obj();
                f.set("name", Json::Str(id.clone()));
                f.set("error", Json::Str(e.clone()));
                failed.push(f);
            }
        }
    }
    let mut root = Json::obj();
    root.set("schema", Json::Str("impulse-run-all-v1".into()));
    root.set("seed", Json::UInt(seed));
    root.set("reports", Json::Arr(reports));
    root.set("failed", Json::Arr(failed));
    root
}

/// Bundles experiment reports into one JSON document (schema
/// `impulse-run-all-v1`) stamped with the master seed — the
/// all-successful special case of [`document_from_outcomes`].
///
/// # Panics
///
/// Panics if any report's attribution stages do not sum to its demand
/// cycles.
pub fn json_document(seed: u64, reports: &[Report]) -> Json {
    let outcomes: Vec<(String, Result<RunArtifacts, String>)> = reports
        .iter()
        .map(|r| (r.name.clone(), Ok(report_artifacts(r))))
        .collect();
    document_from_outcomes(seed, &outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_stable() {
        let exps = run_all_experiments(DEFAULT_SEED);
        assert_eq!(exps.len(), 28);
        let names: std::collections::HashSet<&str> = exps.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), exps.len(), "duplicate experiment names");
        assert_eq!(exps[0].name(), "table1/conventional/mc=false/l1=false");
        assert_eq!(exps[23].name(), "ipc/impulse no-copy gather");
        assert_eq!(exps[24].name(), "tier/none/transpose");
        assert_eq!(exps[27].name(), "tier/cache/dbscan-gather");
    }

    #[test]
    fn observed_catalog_mirrors_the_plain_one() {
        let plain = run_all_experiments(DEFAULT_SEED);
        let traced = run_all_experiments_obs(DEFAULT_SEED, ObsSpec::off());
        assert_eq!(plain.len(), traced.len());
        for (p, t) in plain.iter().zip(&traced) {
            assert_eq!(p.name(), t.name());
        }
        assert!(!ObsSpec::off().enabled());
        assert!(ObsSpec::recording(1 << 16, SketchConfig::default(), 32).enabled());
    }

    #[test]
    fn disabled_obs_jobs_export_no_artifacts() {
        // Run the cheapest catalog entry end to end with ObsSpec::off and
        // check the outcome carries no capture or heatmap.
        let traced = run_all_experiments_obs(DEFAULT_SEED, ObsSpec::off());
        let ipc = traced
            .iter()
            .find(|t| t.name().starts_with("ipc/"))
            .expect("ipc experiment present");
        let out = ipc.run();
        assert!(out.capture.is_empty());
        assert_eq!(out.heatmap, Json::Null);
        assert_eq!(out.report.name, ipc.name());
    }
}
