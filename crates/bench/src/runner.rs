//! A dependency-free job pool for fanning independent experiments across
//! cores.
//!
//! Every experiment in the regenerator binaries builds its own
//! [`Machine`](impulse_sim::Machine), so runs share no mutable state and
//! the *simulated* cycle counts are identical however the host schedules
//! them. The pool exploits that: jobs are claimed from a shared cursor by
//! `std::thread::scope` workers, and results land in per-job slots so the
//! returned `Vec` is always in **submission order** — callers that print
//! tables or write CSV/JSON see byte-identical output at any worker
//! count, only faster.
//!
//! `jobs=1` (or a single-core host) short-circuits to a plain serial
//! loop on the calling thread, preserving the pre-pool execution path
//! exactly.
//!
//! # Examples
//!
//! ```
//! use impulse_bench::runner;
//!
//! let jobs: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
//! let squares = runner::run_ordered(jobs, 4);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Default worker count: every hardware thread the host offers.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A malformed command-line argument, reported with enough context for
/// the binaries to print a usage message and exit nonzero instead of
/// panicking or silently substituting a default.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// `jobs=0` — a pool with no workers cannot make progress.
    ZeroJobs,
    /// `max_retries=0` — a job that may never attempt cannot finish.
    ZeroRetries,
    /// The value is not an unsigned integer.
    NotANumber {
        /// The argument key (`jobs`, `seed`, ...).
        key: &'static str,
        /// The offending value as given.
        value: String,
    },
    /// `tier=` named no known tier policy.
    UnknownTier {
        /// The offending value as given.
        value: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::ZeroJobs => write!(f, "jobs= wants a positive integer, got `0`"),
            ArgError::ZeroRetries => {
                write!(f, "max_retries= wants a positive integer, got `0`")
            }
            ArgError::NotANumber { key, value } => {
                write!(f, "{key}= wants an unsigned integer, got `{value}`")
            }
            ArgError::UnknownTier { value } => {
                write!(f, "tier= wants one of none|flat|cache, got `{value}`")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Parses one `jobs=` value: a positive worker count.
///
/// # Errors
///
/// Rejects `0` and non-numeric values with a typed [`ArgError`].
pub fn parse_jobs(value: &str) -> Result<usize, ArgError> {
    match value.parse::<usize>() {
        Ok(0) => Err(ArgError::ZeroJobs),
        Ok(n) => Ok(n),
        Err(_) => Err(ArgError::NotANumber {
            key: "jobs",
            value: value.to_string(),
        }),
    }
}

/// Parses a `jobs=N` argument out of raw command-line arguments,
/// defaulting to [`default_jobs`] when absent.
///
/// # Errors
///
/// `jobs=0` and non-numeric values are rejected with a typed
/// [`ArgError`] rather than silently falling back to the default.
pub fn jobs_from_args(args: &[String]) -> Result<usize, ArgError> {
    match args.iter().find_map(|a| a.strip_prefix("jobs=")) {
        None => Ok(default_jobs()),
        Some(v) => parse_jobs(v),
    }
}

/// Runs `jobs` on up to `workers` threads, returning results in
/// submission order. `workers <= 1` runs everything serially on the
/// calling thread.
///
/// A panic in any job propagates to the caller once all workers have
/// stopped (no result is silently dropped).
pub fn run_ordered<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }

    // Each job and each result slot gets its own mutex; contention is
    // only on the claim cursor, and each lock is taken exactly once.
    let queue: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = queue[i]
                    .lock()
                    .expect("job queue poisoned")
                    .take()
                    .expect("each job is claimed once");
                let out = job();
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran to completion")
        })
        .collect()
}

/// Parses a `key=N` unsigned-integer argument out of raw command-line
/// arguments (last occurrence wins), defaulting when absent.
///
/// # Errors
///
/// Non-numeric values are rejected with a typed [`ArgError`] rather than
/// silently falling back to the default.
pub fn u64_from_args(args: &[String], key: &'static str, default: u64) -> Result<u64, ArgError> {
    let prefix = format!("{key}=");
    match args.iter().rev().find_map(|a| a.strip_prefix(&prefix)) {
        None => Ok(default),
        Some(v) => v.parse::<u64>().map_err(|_| ArgError::NotANumber {
            key,
            value: v.to_string(),
        }),
    }
}

/// Parses the full supervision policy out of raw command-line
/// arguments: `watchdog_ms=N` (per-attempt deadline; 0 disables the
/// watchdog) and `max_retries=K` (attempts before quarantine). The
/// older spellings `timeout_ms=` and `attempts=` are accepted as
/// aliases; the new names win when both are given.
///
/// # Errors
///
/// `max_retries=0` and non-numeric values are rejected with a typed
/// [`ArgError`] rather than silently falling back to defaults.
pub fn supervise_from_args(args: &[String]) -> Result<SuperviseOpts, ArgError> {
    let timeout_alias = u64_from_args(args, "timeout_ms", 0)?;
    let watchdog_ms = u64_from_args(args, "watchdog_ms", timeout_alias)?;
    let attempts_alias = u64_from_args(args, "attempts", 2)?;
    let max_retries = u64_from_args(args, "max_retries", attempts_alias)?;
    if max_retries == 0 {
        return Err(ArgError::ZeroRetries);
    }
    Ok(SuperviseOpts {
        timeout: (watchdog_ms > 0).then(|| Duration::from_millis(watchdog_ms)),
        max_attempts: max_retries.min(u64::from(u32::MAX)) as u32,
    })
}

/// Parses a `tier=none|flat|cache` argument (alias: `tier_policy=`;
/// `tier=` wins when both are given), defaulting to
/// [`TierPolicy::None`] when absent.
///
/// # Errors
///
/// Unknown policy names are rejected with a typed [`ArgError`] rather
/// than silently running untiered.
pub fn tier_from_args(args: &[String]) -> Result<impulse_types::TierPolicy, ArgError> {
    let value = args
        .iter()
        .rev()
        .find_map(|a| a.strip_prefix("tier="))
        .or_else(|| args.iter().rev().find_map(|a| a.strip_prefix("tier_policy=")));
    match value {
        None => Ok(impulse_types::TierPolicy::None),
        Some(v) => impulse_types::TierPolicy::parse(v).ok_or_else(|| ArgError::UnknownTier {
            value: v.to_string(),
        }),
    }
}

/// The `key=value` arguments every grid binary shares, parsed once and
/// typed once: `jobs=` (worker count), `seed=` (master seed),
/// `watchdog_ms=`/`max_retries=` (supervision; legacy `timeout_ms=` and
/// `attempts=` aliases accepted), `mode=` (free-form backend selector),
/// and `tier=none|flat|cache` (alias `tier_policy=`). New binaries get
/// the whole vocabulary — including the tier axis — from one call
/// instead of re-growing their own parsers.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Worker-thread count (`jobs=`, default: all hardware threads).
    pub jobs: usize,
    /// Master seed (`seed=`).
    pub seed: u64,
    /// Supervision policy (`watchdog_ms=`, `max_retries=` + aliases).
    pub supervise: SuperviseOpts,
    /// Backend/mode selector (`mode=`), when the binary has one.
    pub mode: Option<String>,
    /// Hybrid-tier policy (`tier=`, alias `tier_policy=`).
    pub tier: impulse_types::TierPolicy,
}

impl CommonArgs {
    /// Parses the shared vocabulary out of raw arguments, with
    /// `default_seed` standing in when `seed=` is absent.
    ///
    /// # Errors
    ///
    /// Any malformed shared argument is rejected with a typed
    /// [`ArgError`]; unknown keys are ignored (they belong to the
    /// binary's own vocabulary).
    pub fn parse(args: &[String], default_seed: u64) -> Result<Self, ArgError> {
        Ok(Self {
            jobs: jobs_from_args(args)?,
            seed: u64_from_args(args, "seed", default_seed)?,
            supervise: supervise_from_args(args)?,
            mode: args
                .iter()
                .rev()
                .find_map(|a| a.strip_prefix("mode=").map(String::from)),
            tier: tier_from_args(args)?,
        })
    }
}

/// Like [`run_ordered`], but wraps each result with the wall-clock time
/// its job took (for `BENCH_*.json` trajectories).
pub fn run_ordered_timed<T, F>(jobs: Vec<F>, workers: usize) -> Vec<(T, Duration)>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_ordered(
        jobs.into_iter()
            .map(|f| {
                move || {
                    let t0 = Instant::now();
                    let out = f();
                    (out, t0.elapsed())
                }
            })
            .collect(),
        workers,
    )
}

/// A supervised job: shared (not consumed) so the watchdog can retry it
/// after a panic or timeout without rebuilding the catalog.
pub type SharedJob<T> = Arc<dyn Fn() -> T + Send + Sync>;

/// Why a supervised job failed to produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; `detail` is the panic payload.
    Panicked {
        /// The panic message (or a placeholder for non-string payloads).
        detail: String,
    },
    /// The job ran past its per-attempt deadline. The attempt thread is
    /// abandoned (it cannot be killed); its eventual result is dropped.
    TimedOut {
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
    /// Every configured attempt failed; the job is quarantined and the
    /// rest of the grid proceeds without it.
    Quarantined {
        /// How many attempts were made.
        attempts: u32,
        /// Display form of the last failure.
        last: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked { detail } => write!(f, "job panicked: {detail}"),
            JobError::TimedOut { limit_ms } => {
                write!(f, "job exceeded its {limit_ms} ms deadline")
            }
            JobError::Quarantined { attempts, last } => {
                write!(
                    f,
                    "job quarantined after {attempts} failed attempts (last: {last})"
                )
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Watchdog policy for [`run_supervised`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperviseOpts {
    /// Per-attempt deadline. `None` disables the watchdog thread; each
    /// attempt runs on the worker itself (panics are still isolated).
    pub timeout: Option<Duration>,
    /// Attempts before the job is quarantined (>= 1). With `1`, the
    /// first failure is returned directly; with more, the final error is
    /// [`JobError::Quarantined`].
    pub max_attempts: u32,
}

impl Default for SuperviseOpts {
    /// No deadline, one retry before quarantine.
    fn default() -> Self {
        Self {
            timeout: None,
            max_attempts: 2,
        }
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One attempt: inline (no deadline) or on a watchdog-monitored thread.
fn attempt_one<T: Send + 'static>(
    job: &SharedJob<T>,
    timeout: Option<Duration>,
) -> Result<T, JobError> {
    let Some(limit) = timeout else {
        return catch_unwind(AssertUnwindSafe(|| job())).map_err(|p| JobError::Panicked {
            detail: panic_detail(p),
        });
    };
    // The attempt runs detached so the supervisor can give up on it; a
    // hung attempt leaks its thread (threads cannot be killed) but the
    // grid moves on, which is the contract the deadline buys.
    let (tx, rx) = mpsc::channel();
    let job = job.clone();
    std::thread::spawn(move || {
        let out = catch_unwind(AssertUnwindSafe(|| job()));
        let _ = tx.send(out);
    });
    match rx.recv_timeout(limit) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(p)) => Err(JobError::Panicked {
            detail: panic_detail(p),
        }),
        Err(_) => Err(JobError::TimedOut {
            limit_ms: limit.as_millis() as u64,
        }),
    }
}

/// Retries up to the configured budget, then quarantines.
fn supervise_one<T: Send + 'static>(
    job: &SharedJob<T>,
    opts: &SuperviseOpts,
) -> Result<T, JobError> {
    let attempts = opts.max_attempts.max(1);
    let mut last = None;
    for _ in 0..attempts {
        match attempt_one(job, opts.timeout) {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
    }
    let last = last.expect("at least one attempt ran");
    if attempts == 1 {
        Err(last)
    } else {
        Err(JobError::Quarantined {
            attempts,
            last: last.to_string(),
        })
    }
}

/// Like [`run_ordered`], but self-healing: each job runs under
/// [`catch_unwind`] (one poisoned experiment yields an `Err` slot while
/// the rest of the grid completes), an optional per-attempt deadline
/// watchdog, and a bounded retry/quarantine policy. `on_complete` fires
/// as each job finishes (in completion order, possibly from several
/// worker threads) — the hook the crash-safe journal appends from.
///
/// Results come back in submission order regardless of completion order,
/// preserving the byte-identical-output contract at any worker count.
pub fn run_supervised<T: Send + 'static>(
    jobs: Vec<SharedJob<T>>,
    workers: usize,
    opts: &SuperviseOpts,
    on_complete: &(dyn Fn(usize, &Result<T, JobError>) + Sync),
) -> Vec<Result<T, JobError>> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let slots: Vec<Mutex<Option<Result<T, JobError>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = supervise_one(&jobs[i], opts);
                on_complete(i, &out);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job was claimed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        // Jobs deliberately finish out of order (later jobs are cheaper).
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_micros((32 - i) * 50));
                    i
                }
            })
            .collect();
        let out = run_ordered(jobs, 8);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || (0..16u64).map(|i| move || i * 3 + 1).collect::<Vec<_>>();
        assert_eq!(run_ordered(mk(), 1), run_ordered(mk(), 4));
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u64> = run_ordered(Vec::<fn() -> u64>::new(), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn oversubscribed_workers_are_clamped() {
        let jobs: Vec<_> = (0..3u64).map(|i| move || i).collect();
        assert_eq!(run_ordered(jobs, 64), vec![0, 1, 2]);
    }

    #[test]
    fn timed_results_carry_durations() {
        let jobs: Vec<_> = (0..4u64).map(|i| move || i).collect();
        let out = run_ordered_timed(jobs, 2);
        assert_eq!(
            out.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn jobs_arg_parsing() {
        assert_eq!(jobs_from_args(&["jobs=3".into()]), Ok(3));
        assert_eq!(jobs_from_args(&[]), Ok(default_jobs()));
        assert_eq!(jobs_from_args(&["out=x.csv".into()]), Ok(default_jobs()));
    }

    #[test]
    fn zero_and_garbage_jobs_are_typed_errors() {
        assert_eq!(jobs_from_args(&["jobs=0".into()]), Err(ArgError::ZeroJobs));
        assert_eq!(
            jobs_from_args(&["jobs=four".into()]),
            Err(ArgError::NotANumber {
                key: "jobs",
                value: "four".into()
            })
        );
        assert!(parse_jobs("-2").unwrap_err().to_string().contains("-2"));
        // Display strings are stable usage text.
        assert_eq!(
            ArgError::ZeroJobs.to_string(),
            "jobs= wants a positive integer, got `0`"
        );
    }

    #[test]
    fn u64_args_are_typed() {
        assert_eq!(u64_from_args(&["seed=7".into()], "seed", 1), Ok(7));
        assert_eq!(u64_from_args(&[], "seed", 1), Ok(1));
        assert_eq!(
            u64_from_args(&["seed=1".into(), "seed=2".into()], "seed", 0),
            Ok(2),
            "last occurrence wins"
        );
        assert_eq!(
            u64_from_args(&["seed=xyz".into()], "seed", 1),
            Err(ArgError::NotANumber {
                key: "seed",
                value: "xyz".into()
            })
        );
    }

    #[test]
    fn tier_args_are_typed_with_alias() {
        use impulse_types::TierPolicy;
        assert_eq!(tier_from_args(&[]), Ok(TierPolicy::None));
        assert_eq!(tier_from_args(&["tier=flat".into()]), Ok(TierPolicy::Flat));
        assert_eq!(
            tier_from_args(&["tier_policy=cache".into()]),
            Ok(TierPolicy::Cache),
            "legacy-style alias accepted"
        );
        assert_eq!(
            tier_from_args(&["tier_policy=cache".into(), "tier=flat".into()]),
            Ok(TierPolicy::Flat),
            "tier= wins over the alias"
        );
        assert_eq!(
            tier_from_args(&["tier=warp".into()]),
            Err(ArgError::UnknownTier {
                value: "warp".into()
            })
        );
        // Display strings are stable usage text.
        assert_eq!(
            ArgError::UnknownTier {
                value: "warp".into()
            }
            .to_string(),
            "tier= wants one of none|flat|cache, got `warp`"
        );
    }

    #[test]
    fn common_args_parse_the_shared_vocabulary_once() {
        let args: Vec<String> = [
            "jobs=2",
            "seed=77",
            "watchdog_ms=5000",
            "max_retries=3",
            "mode=replay",
            "tier=cache",
            "out=ignored.json",
        ]
        .map(String::from)
        .to_vec();
        let c = CommonArgs::parse(&args, 1).expect("parse");
        assert_eq!(c.jobs, 2);
        assert_eq!(c.seed, 77);
        assert_eq!(c.supervise.timeout, Some(Duration::from_millis(5000)));
        assert_eq!(c.supervise.max_attempts, 3);
        assert_eq!(c.mode.as_deref(), Some("replay"));
        assert_eq!(c.tier, impulse_types::TierPolicy::Cache);

        let d = CommonArgs::parse(&[], 9).expect("defaults");
        assert_eq!(d.seed, 9);
        assert_eq!(d.mode, None);
        assert_eq!(d.tier, impulse_types::TierPolicy::None);

        // Legacy supervision aliases flow through unchanged.
        let legacy: Vec<String> = ["timeout_ms=100", "attempts=4"].map(String::from).to_vec();
        let l = CommonArgs::parse(&legacy, 0).expect("aliases");
        assert_eq!(l.supervise.timeout, Some(Duration::from_millis(100)));
        assert_eq!(l.supervise.max_attempts, 4);
    }

    fn shared<T, F: Fn() -> T + Send + Sync + 'static>(f: F) -> SharedJob<T> {
        Arc::new(f)
    }

    #[test]
    fn panicking_job_is_isolated_and_typed() {
        let jobs: Vec<SharedJob<u64>> = vec![
            shared(|| 1),
            shared(|| panic!("deliberately poisoned experiment")),
            shared(|| 3),
        ];
        let opts = SuperviseOpts {
            timeout: None,
            max_attempts: 1,
        };
        let out = run_supervised(jobs, 2, &opts, &|_, _| {});
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3), "grid completes around the poisoned job");
        match &out[1] {
            Err(JobError::Panicked { detail }) => {
                assert!(detail.contains("deliberately poisoned"))
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn repeated_failure_quarantines_with_attempt_count() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = calls.clone();
        let jobs: Vec<SharedJob<u64>> = vec![shared(move || {
            c.fetch_add(1, Ordering::Relaxed);
            panic!("always fails")
        })];
        let opts = SuperviseOpts {
            timeout: None,
            max_attempts: 3,
        };
        let out = run_supervised(jobs, 1, &opts, &|_, _| {});
        assert_eq!(calls.load(Ordering::Relaxed), 3, "retried exactly K times");
        match &out[0] {
            Err(JobError::Quarantined { attempts: 3, last }) => {
                assert!(last.contains("always fails"))
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
    }

    #[test]
    fn flaky_job_recovers_on_retry() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = calls.clone();
        let jobs: Vec<SharedJob<u64>> = vec![shared(move || {
            if c.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            42
        })];
        let out = run_supervised(jobs, 1, &SuperviseOpts::default(), &|_, _| {});
        assert_eq!(out[0], Ok(42));
    }

    #[test]
    fn watchdog_times_out_hung_job_and_grid_completes() {
        let jobs: Vec<SharedJob<u64>> = vec![
            shared(|| {
                std::thread::sleep(Duration::from_secs(30));
                0
            }),
            shared(|| 7),
        ];
        let opts = SuperviseOpts {
            timeout: Some(Duration::from_millis(50)),
            max_attempts: 1,
        };
        let out = run_supervised(jobs, 2, &opts, &|_, _| {});
        assert_eq!(out[0], Err(JobError::TimedOut { limit_ms: 50 }));
        assert_eq!(out[1], Ok(7));
    }

    #[test]
    fn on_complete_sees_every_job_exactly_once() {
        let seen = Mutex::new(vec![0u32; 8]);
        let jobs: Vec<SharedJob<usize>> = (0..8).map(|i| shared(move || i)).collect();
        let out = run_supervised(jobs, 4, &SuperviseOpts::default(), &|i, r| {
            assert_eq!(*r.as_ref().expect("job succeeds"), i);
            seen.lock().expect("lock")[i] += 1;
        });
        assert_eq!(out.len(), 8);
        assert!(seen.lock().expect("lock").iter().all(|&c| c == 1));
    }

    #[test]
    fn supervise_args_are_typed_with_aliases() {
        let opts = supervise_from_args(&[]).expect("defaults");
        assert_eq!(opts.timeout, None);
        assert_eq!(opts.max_attempts, 2);

        let opts = supervise_from_args(&["watchdog_ms=250".into(), "max_retries=5".into()])
            .expect("new names");
        assert_eq!(opts.timeout, Some(Duration::from_millis(250)));
        assert_eq!(opts.max_attempts, 5);

        // Old spellings still work...
        let opts =
            supervise_from_args(&["timeout_ms=100".into(), "attempts=3".into()]).expect("aliases");
        assert_eq!(opts.timeout, Some(Duration::from_millis(100)));
        assert_eq!(opts.max_attempts, 3);

        // ...and the new names win when both are given.
        let opts = supervise_from_args(&[
            "timeout_ms=100".into(),
            "watchdog_ms=400".into(),
            "attempts=3".into(),
            "max_retries=7".into(),
        ])
        .expect("both");
        assert_eq!(opts.timeout, Some(Duration::from_millis(400)));
        assert_eq!(opts.max_attempts, 7);

        assert_eq!(
            supervise_from_args(&["max_retries=0".into()]),
            Err(ArgError::ZeroRetries)
        );
        assert!(supervise_from_args(&["watchdog_ms=soon".into()]).is_err());
        assert_eq!(
            ArgError::ZeroRetries.to_string(),
            "max_retries= wants a positive integer, got `0`"
        );
    }

    #[test]
    fn job_error_display_is_stable() {
        assert_eq!(
            JobError::Panicked {
                detail: "boom".into()
            }
            .to_string(),
            "job panicked: boom"
        );
        assert_eq!(
            JobError::TimedOut { limit_ms: 250 }.to_string(),
            "job exceeded its 250 ms deadline"
        );
        assert_eq!(
            JobError::Quarantined {
                attempts: 2,
                last: "job panicked: boom".into()
            }
            .to_string(),
            "job quarantined after 2 failed attempts (last: job panicked: boom)"
        );
    }
}
