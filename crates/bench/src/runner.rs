//! A dependency-free job pool for fanning independent experiments across
//! cores.
//!
//! Every experiment in the regenerator binaries builds its own
//! [`Machine`](impulse_sim::Machine), so runs share no mutable state and
//! the *simulated* cycle counts are identical however the host schedules
//! them. The pool exploits that: jobs are claimed from a shared cursor by
//! `std::thread::scope` workers, and results land in per-job slots so the
//! returned `Vec` is always in **submission order** — callers that print
//! tables or write CSV/JSON see byte-identical output at any worker
//! count, only faster.
//!
//! `jobs=1` (or a single-core host) short-circuits to a plain serial
//! loop on the calling thread, preserving the pre-pool execution path
//! exactly.
//!
//! # Examples
//!
//! ```
//! use impulse_bench::runner;
//!
//! let jobs: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
//! let squares = runner::run_ordered(jobs, 4);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default worker count: every hardware thread the host offers.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a `jobs=N` argument out of raw command-line arguments,
/// defaulting to [`default_jobs`]. `jobs=0` is rejected.
///
/// # Panics
///
/// Panics with a usage message if the value is not a positive integer.
pub fn jobs_from_args(args: &[String]) -> usize {
    let Some(v) = args.iter().find_map(|a| a.strip_prefix("jobs=")) else {
        return default_jobs();
    };
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => panic!("jobs= wants a positive integer, got `{v}`"),
    }
}

/// Runs `jobs` on up to `workers` threads, returning results in
/// submission order. `workers <= 1` runs everything serially on the
/// calling thread.
///
/// A panic in any job propagates to the caller once all workers have
/// stopped (no result is silently dropped).
pub fn run_ordered<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }

    // Each job and each result slot gets its own mutex; contention is
    // only on the claim cursor, and each lock is taken exactly once.
    let queue: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = queue[i]
                    .lock()
                    .expect("job queue poisoned")
                    .take()
                    .expect("each job is claimed once");
                let out = job();
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran to completion")
        })
        .collect()
}

/// Like [`run_ordered`], but wraps each result with the wall-clock time
/// its job took (for `BENCH_*.json` trajectories).
pub fn run_ordered_timed<T, F>(jobs: Vec<F>, workers: usize) -> Vec<(T, Duration)>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_ordered(
        jobs.into_iter()
            .map(|f| {
                move || {
                    let t0 = Instant::now();
                    let out = f();
                    (out, t0.elapsed())
                }
            })
            .collect(),
        workers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        // Jobs deliberately finish out of order (later jobs are cheaper).
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_micros((32 - i) * 50));
                    i
                }
            })
            .collect();
        let out = run_ordered(jobs, 8);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || (0..16u64).map(|i| move || i * 3 + 1).collect::<Vec<_>>();
        assert_eq!(run_ordered(mk(), 1), run_ordered(mk(), 4));
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u64> = run_ordered(Vec::<fn() -> u64>::new(), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn oversubscribed_workers_are_clamped() {
        let jobs: Vec<_> = (0..3u64).map(|i| move || i).collect();
        assert_eq!(run_ordered(jobs, 64), vec![0, 1, 2]);
    }

    #[test]
    fn timed_results_carry_durations() {
        let jobs: Vec<_> = (0..4u64).map(|i| move || i).collect();
        let out = run_ordered_timed(jobs, 2);
        assert_eq!(
            out.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn jobs_arg_parsing() {
        assert_eq!(jobs_from_args(&["jobs=3".into()]), 3);
        assert_eq!(jobs_from_args(&[]), default_jobs());
        assert_eq!(jobs_from_args(&["out=x.csv".into()]), default_jobs());
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn zero_jobs_rejected() {
        jobs_from_args(&["jobs=0".into()]);
    }
}
