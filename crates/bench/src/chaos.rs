//! Chaos/soak harness: the workload catalog under generated fault
//! schedules.
//!
//! Every case is a (workload × fault-scenario) cell: a fresh
//! [`Machine`] is built with a [`FaultConfig`] derived from the master
//! seed, the workload runs to completion, and the harness collects
//! per-fault-class counts, recovery-cycle attribution, and a list of
//! *invariant violations* — conditions that must never hold on a
//! healthy system, e.g. silent data corruption while ECC is on, or
//! retries exceeding the configured bound. A syscall-misuse probe rides
//! along to check that every typed-error path at the syscall boundary
//! degrades gracefully instead of panicking.
//!
//! Because every fault is drawn from a seeded per-site stream and the
//! job runner returns results in submission order, the emitted
//! `results/chaos.json` is **byte-identical** for a fixed seed at any
//! worker count — that determinism is itself one of the asserted
//! invariants (see the tests).

use std::sync::Arc;

use crate::runner::SharedJob;
use impulse_fault::{
    BusFaultStats, CapsFaultStats, EccConfig, EccMode, EccStats, FaultConfig, PgTblFaultStats,
    Trigger,
};
use impulse_obs::Json;
use impulse_os::OsError;
use impulse_sim::{Machine, SystemConfig};
use impulse_types::geom::PAGE_SIZE;
use impulse_types::VRange;
use impulse_workloads::{
    Diagonal, DiagonalVariant, Smvp, SmvpVariant, SparsePattern, TlbStress, TlbVariant,
};

/// Workloads in the chaos catalog — deliberately small instances of the
/// paper's remapping flavors (strided, scatter/gather, superpage) so the
/// full scenario grid stays fast enough for a CI smoke run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosWorkload {
    /// Strided diagonal walk through a remapped alias.
    Diagonal,
    /// Scatter/gather sparse matrix-vector product.
    Smvp,
    /// Superpage sweep over a TLB-hostile working set.
    Superpage,
}

impl ChaosWorkload {
    /// Every workload in the catalog.
    pub const ALL: [ChaosWorkload; 3] = [
        ChaosWorkload::Diagonal,
        ChaosWorkload::Smvp,
        ChaosWorkload::Superpage,
    ];

    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ChaosWorkload::Diagonal => "diagonal",
            ChaosWorkload::Smvp => "smvp-sg",
            ChaosWorkload::Superpage => "superpage",
        }
    }

    /// Sets up and runs the workload on `m`. Setup failures are bugs in
    /// the harness (the catalog is sized to fit `paint_small`), so they
    /// panic rather than count as fault-injection outcomes.
    fn drive(self, m: &mut Machine) {
        match self {
            ChaosWorkload::Diagonal => {
                let d = Diagonal::setup(m, 512, DiagonalVariant::Remapped).expect("diagonal setup");
                d.run(m, 4);
            }
            ChaosWorkload::Smvp => {
                let pattern = Arc::new(SparsePattern::generate(1500, 10, 0xC9A05));
                let w = Smvp::setup(m, pattern, SmvpVariant::ScatterGather).expect("smvp setup");
                w.run(m, 1);
            }
            ChaosWorkload::Superpage => {
                let w = TlbStress::setup(m, 4, 32, TlbVariant::Superpages).expect("tlb setup");
                w.sweep(m, 2);
            }
        }
    }
}

/// One injectable fault class, registered exactly once and consumed in
/// three places: the scenario grid (each class names its dedicated
/// single-class scenarios), the `storm` mixer (each class contributes
/// its storm-mix knobs), and the `results/chaos.json` totals section
/// (each class emits its counter rollup under `key`). Adding a fault
/// class means adding one registry row — the grid, the storm, and the
/// document schema pick it up from here, so they can never drift apart.
pub struct FaultClass {
    /// Stable totals key in `results/chaos.json` (`dram_ecc`, ...).
    pub key: &'static str,
    /// The dedicated single-class scenarios exercising this class.
    pub scenarios: &'static [FaultScenario],
    /// Adds this class's storm-mix knobs to a schedule.
    storm: fn(&mut FaultConfig),
    /// Emits this class's totals rollup over a finished grid.
    totals: fn(&[ChaosOutcome]) -> Json,
}

/// The chaos fault-class registry, in stable document order.
pub const FAULT_CLASSES: [FaultClass; 4] = [
    FaultClass {
        key: "dram_ecc",
        scenarios: &[
            FaultScenario::DramEcc,
            FaultScenario::DramDouble,
            FaultScenario::DramNoEcc,
        ],
        storm: |f| {
            f.dram_flip = Trigger::EveryN {
                every: 11,
                phase: 3,
            };
            f.dram_double_permille = 100;
        },
        totals: |outcomes| {
            let sum = |g: fn(&ChaosOutcome) -> u64| outcomes.iter().map(g).sum::<u64>();
            let mut dram = Json::obj();
            dram.set("corrected", Json::UInt(sum(|o| o.ecc.corrected)));
            dram.set(
                "detected_double",
                Json::UInt(sum(|o| o.ecc.detected_double)),
            );
            dram.set("silent", Json::UInt(sum(|o| o.ecc.silent)));
            dram.set(
                "recovery_cycles",
                Json::UInt(sum(|o| o.ecc.recovery_cycles)),
            );
            dram
        },
    },
    FaultClass {
        key: "bus",
        scenarios: &[FaultScenario::BusTimeout],
        storm: |f| f.bus_timeout = Trigger::Permille(20),
        totals: |outcomes| {
            let sum = |g: fn(&ChaosOutcome) -> u64| outcomes.iter().map(g).sum::<u64>();
            let mut bus = Json::obj();
            bus.set("timeouts", Json::UInt(sum(|o| o.bus.timeouts)));
            bus.set("retries", Json::UInt(sum(|o| o.bus.retries)));
            bus.set(
                "recovery_cycles",
                Json::UInt(sum(|o| o.bus.recovery_cycles)),
            );
            bus
        },
    },
    FaultClass {
        key: "pgtbl",
        scenarios: &[FaultScenario::PgTbl],
        storm: |f| f.pgtbl_corrupt = Trigger::Permille(10),
        totals: |outcomes| {
            let sum = |g: fn(&ChaosOutcome) -> u64| outcomes.iter().map(g).sum::<u64>();
            let mut pgtbl = Json::obj();
            pgtbl.set("corruptions", Json::UInt(sum(|o| o.pgtbl.corruptions)));
            pgtbl.set("reloads", Json::UInt(sum(|o| o.pgtbl.reloads)));
            pgtbl.set(
                "recovery_cycles",
                Json::UInt(sum(|o| o.pgtbl.recovery_cycles)),
            );
            pgtbl
        },
    },
    FaultClass {
        key: "caps",
        scenarios: &[FaultScenario::Caps],
        storm: |f| f.caps_corrupt = Trigger::EveryN { every: 3, phase: 1 },
        totals: |outcomes| {
            let sum = |g: fn(&ChaosOutcome) -> u64| outcomes.iter().map(g).sum::<u64>();
            let mut caps = Json::obj();
            caps.set("corruptions", Json::UInt(sum(|o| o.caps.corruptions)));
            caps.set("reloads", Json::UInt(sum(|o| o.caps.reloads)));
            caps.set(
                "recovery_cycles",
                Json::UInt(sum(|o| o.caps.recovery_cycles)),
            );
            caps.set("unrecoverable", Json::UInt(sum(|o| o.caps.unrecoverable)));
            caps
        },
    },
];

/// Fault scenarios the grid crosses with each workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultScenario {
    /// Fault-free control run: every fault counter must stay zero.
    Control,
    /// Single-bit DRAM flips under SECDED: all corrected, zero
    /// data-diff.
    DramEcc,
    /// DRAM flips with a double-bit fraction under SECDED: doubles are
    /// detected (known corruption), never silent.
    DramDouble,
    /// DRAM flips with ECC disabled: corruption passes silently and the
    /// data signature goes dirty.
    DramNoEcc,
    /// Bus request timeouts with bounded exponential-backoff retry.
    BusTimeout,
    /// MC-TLB/page-table entry corruption with detect-and-reload.
    PgTbl,
    /// Capability-table entry corruption with mirror-reload recovery.
    Caps,
    /// Every fault class at once.
    Storm,
}

impl FaultScenario {
    /// Every scenario in the grid.
    pub const ALL: [FaultScenario; 8] = [
        FaultScenario::Control,
        FaultScenario::DramEcc,
        FaultScenario::DramDouble,
        FaultScenario::DramNoEcc,
        FaultScenario::BusTimeout,
        FaultScenario::PgTbl,
        FaultScenario::Caps,
        FaultScenario::Storm,
    ];

    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::Control => "control",
            FaultScenario::DramEcc => "dram-ecc",
            FaultScenario::DramDouble => "dram-double",
            FaultScenario::DramNoEcc => "dram-noecc",
            FaultScenario::BusTimeout => "bus-timeout",
            FaultScenario::PgTbl => "pgtbl-corrupt",
            FaultScenario::Caps => "caps-corrupt",
            FaultScenario::Storm => "storm",
        }
    }

    /// The fault schedule this scenario attaches under `seed`.
    pub fn config(self, seed: u64) -> FaultConfig {
        let base = FaultConfig {
            seed,
            ..FaultConfig::none()
        };
        let flips = Trigger::EveryN { every: 7, phase: 0 };
        match self {
            FaultScenario::Control => base,
            FaultScenario::DramEcc => FaultConfig {
                dram_flip: flips,
                ..base
            },
            FaultScenario::DramDouble => FaultConfig {
                dram_flip: flips,
                dram_double_permille: 250,
                ..base
            },
            FaultScenario::DramNoEcc => FaultConfig {
                dram_flip: flips,
                ecc: EccConfig {
                    mode: EccMode::None,
                    ..EccConfig::default()
                },
                ..base
            },
            FaultScenario::BusTimeout => FaultConfig {
                bus_timeout: Trigger::Permille(50),
                ..base
            },
            FaultScenario::PgTbl => FaultConfig {
                pgtbl_corrupt: Trigger::Permille(20),
                ..base
            },
            FaultScenario::Caps => FaultConfig {
                caps_corrupt: Trigger::EveryN { every: 2, phase: 0 },
                ..base
            },
            FaultScenario::Storm => {
                // Every registered fault class at once: the storm mix is
                // whatever the registry says, never a hand-kept copy.
                let mut f = base;
                for class in &FAULT_CLASSES {
                    (class.storm)(&mut f);
                }
                f
            }
        }
    }

    /// Whether the schedule must leave the visible data byte-identical
    /// to a fault-free run (`corrupt_sig == 0`). True everywhere except
    /// where corruption is *expected*: uncorrectable doubles and
    /// ECC-disabled runs.
    pub fn expects_clean_data(self) -> bool {
        !matches!(
            self,
            FaultScenario::DramDouble | FaultScenario::DramNoEcc | FaultScenario::Storm
        )
    }
}

/// Everything one chaos case produced: identity, cost, per-fault-class
/// counts, and any invariant violations observed in that run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Workload label.
    pub workload: String,
    /// Fault-scenario label.
    pub scenario: String,
    /// Simulated cycles the run took.
    pub cycles: u64,
    /// Instructions the run retired.
    pub instructions: u64,
    /// ECC bookkeeping (corrected / detected / silent / data signature).
    pub ecc: EccStats,
    /// Bus timeout/retry bookkeeping.
    pub bus: BusFaultStats,
    /// MC page-table corruption/reload bookkeeping.
    pub pgtbl: PgTblFaultStats,
    /// Kernel capability-table corruption/reload bookkeeping.
    pub caps: CapsFaultStats,
    /// Shadow accesses that degraded to the non-remapped NACK path.
    pub remap_faults: u64,
    /// Controller-side NACKed reads.
    pub rejected_reads: u64,
    /// Controller-side NACKed writes.
    pub rejected_writes: u64,
    /// Syscalls that returned a typed error (and charged trap cost).
    pub syscall_failures: u64,
    /// Invariant violations; empty on a healthy run.
    pub violations: Vec<String>,
}

/// Collects counters and per-case invariants from a finished machine.
fn collect(
    workload: &'static str,
    scenario: FaultScenario,
    faults: &FaultConfig,
    m: &Machine,
) -> ChaosOutcome {
    let ms = m.memory();
    let stats = ms.stats();
    let mc = ms.mc().stats();
    let ecc = ms.mc().ecc_stats();
    let bus = ms.bus().fault_stats();
    let pgtbl = ms.mc().pgtbl_fault_stats();
    let caps = m.kernel().caps().fault_stats();

    let mut violations = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if !ok {
            violations.push(format!("{workload}/{}: {what}", scenario.name()));
        }
    };

    // Demand attribution must stay exact under every fault schedule.
    check(
        ms.attribution().total() == stats.load_cycles + stats.store_cycles,
        "attribution total != demand cycles",
    );
    // No silent data corruption while ECC is on.
    if faults.ecc.mode == EccMode::Secded {
        check(ecc.silent == 0, "silent corruption with SECDED enabled");
    }
    if scenario.expects_clean_data() {
        check(ecc.corrupt_sig == 0, "data signature dirty");
    }
    // Retries are bounded by the configured budget.
    check(
        bus.retries <= bus.timeouts * u64::from(faults.bus_max_retries),
        "bus retries exceed the configured bound",
    );
    // Every detected page-table corruption is recovered by a reload.
    check(
        pgtbl.reloads == pgtbl.corruptions,
        "pgtbl corruption without a matching reload",
    );
    // Injected capability-table corruption is shallow: every corruption
    // is either reloaded from the mirror or (never, without a damaged
    // mirror) quarantined as a typed error — nothing slips through.
    check(
        caps.reloads + caps.unrecoverable == caps.corruptions,
        "caps corruption neither reloaded nor quarantined",
    );
    check(
        caps.unrecoverable == 0,
        "mirror-recoverable caps corruption went unrecoverable",
    );
    // A fault-free schedule must observe zero fault activity.
    if faults.is_none() {
        check(
            ecc.corrected + ecc.detected_double + ecc.silent == 0
                && bus.timeouts == 0
                && pgtbl.corruptions == 0
                && caps.corruptions == 0,
            "fault counters nonzero on a fault-free schedule",
        );
    }

    ChaosOutcome {
        workload: workload.to_string(),
        scenario: scenario.name().to_string(),
        cycles: m.now(),
        instructions: m.instructions(),
        ecc,
        bus,
        pgtbl,
        caps,
        remap_faults: stats.remap_faults,
        rejected_reads: mc.rejected_reads,
        rejected_writes: mc.rejected_writes,
        syscall_failures: m.syscall_failures(),
        violations,
    }
}

/// Gives the capability injector validations to corrupt: the catalog
/// workloads grant remappings but never share, retarget, or revoke, so
/// their capability handles are never re-validated — and validation is
/// where corruption is detected and repaired. Scenarios that schedule
/// capability-table corruption run this short grant/share/revoke churn
/// before the workload.
fn caps_preamble(m: &mut Machine) {
    let buf = m
        .alloc_region(2 * PAGE_SIZE, PAGE_SIZE)
        .expect("caps preamble buffer");
    let receiver = m.sys_spawn();
    for _ in 0..8 {
        let g = m.sys_recolor(buf, &[0]).expect("caps preamble grant");
        m.sys_share(&g, receiver).expect("caps preamble share");
        m.sys_revoke(&g).expect("caps preamble revoke");
    }
}

/// Runs one (workload × scenario) cell under `seed`.
pub fn run_case(w: ChaosWorkload, s: FaultScenario, seed: u64) -> ChaosOutcome {
    let faults = s.config(seed);
    let cfg = SystemConfig::paint_small().with_faults(faults.clone());
    let mut m = Machine::new(&cfg);
    if !faults.caps_corrupt.is_never() {
        caps_preamble(&mut m);
    }
    w.drive(&mut m);
    collect(w.name(), s, &faults, &m)
}

/// Syscall-misuse probe: drives every typed-error path at the syscall
/// boundary on a machine with a nearly-empty shadow pool and checks
/// that each misuse returns the documented error — and that the machine
/// keeps working afterwards — instead of panicking.
pub fn run_misuse_probe(seed: u64) -> ChaosOutcome {
    let mut cfg = SystemConfig::paint_small().with_faults(FaultScenario::Control.config(seed));
    cfg.kernel.shadow_span = 2 * PAGE_SIZE;
    let faults = cfg.faults.clone();
    let mut m = Machine::new(&cfg);

    let mut violations = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if !ok {
            violations.push(format!("misuse-probe: {what}"));
        }
    };

    let a = m.alloc_region(64 * PAGE_SIZE, PAGE_SIZE).expect("alloc");

    // Zero stride is malformed descriptor geometry.
    let r = m.sys_remap_strided(a.start(), 64, 0, 8, 4096);
    check(
        matches!(r, Err(OsError::InvalidArg(_))),
        "zero stride not rejected as InvalidArg",
    );

    // A gather index one past the end of a 128-element target. The
    // target range is sized exactly (allocation is page-granular).
    let x = m.alloc_region(128 * 8, 128).expect("alloc x");
    let col = m.alloc_region(3 * 4, 128).expect("alloc col");
    let target = VRange::new(x.start(), 128 * 8);
    let r = m.sys_remap_gather(target, 8, Arc::new(vec![0, 5, 128]), col, 4);
    check(
        matches!(
            r,
            Err(OsError::IndexOutOfBounds {
                index: 128,
                limit: 128
            })
        ),
        "OOB gather index not rejected as IndexOutOfBounds",
    );

    // A dense alias larger than the 2-page shadow pool.
    let r = m.sys_remap_strided(a.start(), 8, 8, 2048, PAGE_SIZE);
    check(
        matches!(r, Err(OsError::ShadowExhausted { .. })),
        "oversized alias not rejected as ShadowExhausted",
    );

    // The machine degrades, not dies: failed syscalls charged trap cost
    // and the remap machinery still works within the remaining pool.
    check(
        m.syscall_failures() == 3,
        "failed syscalls not counted as 3",
    );
    m.load(a.start());
    let r = m.sys_remap_strided(a.start(), 8, 8, 16, 4096);
    check(r.is_ok(), "well-formed remap fails after recovered misuse");
    if let Ok(g) = r {
        m.load(g.alias.start());
    }

    let mut out = collect("misuse-probe", FaultScenario::Control, &faults, &m);
    out.violations.extend(violations);
    out
}

/// A shared chaos job for the supervised runner (retryable, so `Fn`).
pub type ChaosJob = SharedJob<ChaosOutcome>;

/// The full chaos grid: every workload × every fault scenario, plus the
/// syscall-misuse probe — in a deterministic submission order, each
/// paired with its stable journal id (`<workload>/<scenario>`).
pub fn chaos_jobs(seed: u64) -> Vec<(String, ChaosJob)> {
    let mut jobs: Vec<(String, ChaosJob)> = Vec::new();
    for w in ChaosWorkload::ALL {
        for s in FaultScenario::ALL {
            jobs.push((
                format!("{}/{}", w.name(), s.name()),
                Arc::new(move || run_case(w, s, seed)),
            ));
        }
    }
    jobs.push((
        "misuse-probe".into(),
        Arc::new(move || run_misuse_probe(seed)),
    ));
    jobs
}

/// Invariants only visible across the whole grid: recovery costs
/// cycles, so no fault scenario that actually paid recovery cycles may
/// beat its fault-free control, and the ECC schedule must actually have
/// fired on every workload.
pub fn cross_case_violations(outcomes: &[ChaosOutcome]) -> Vec<String> {
    let mut v = Vec::new();
    let control = |w: &str| {
        outcomes
            .iter()
            .find(|o| o.workload == w && o.scenario == FaultScenario::Control.name())
    };
    for o in outcomes {
        let Some(c) = control(&o.workload) else {
            v.push(format!("{}: no fault-free control run", o.workload));
            continue;
        };
        let recovery = o.ecc.recovery_cycles + o.bus.recovery_cycles + o.pgtbl.recovery_cycles;
        if recovery > 0 && o.cycles < c.cycles {
            v.push(format!(
                "{}/{}: paid {recovery} recovery cycles yet beat its control ({} < {})",
                o.workload, o.scenario, o.cycles, c.cycles
            ));
        }
        if o.scenario == FaultScenario::DramEcc.name() && o.ecc.corrected == 0 {
            v.push(format!(
                "{}/{}: ECC schedule never fired",
                o.workload, o.scenario
            ));
        }
    }
    v
}

impl ChaosOutcome {
    /// Serializes this case for `chaos.json` and the run journal.
    pub fn to_json(&self) -> Json {
        case_json(self)
    }

    /// Rebuilds a case from [`ChaosOutcome::to_json`] output (the resume
    /// path); `None` if the shape is wrong.
    pub fn from_json(v: &Json) -> Option<Self> {
        let u = |obj: &Json, k: &str| obj.get(k).and_then(Json::as_u64);
        let ecc = v.get("ecc")?;
        let bus = v.get("bus")?;
        let pgtbl = v.get("pgtbl")?;
        let caps = v.get("caps")?;
        let violations = match v.get("violations")? {
            Json::Arr(items) => items
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(Self {
            workload: v.get("workload")?.as_str()?.to_string(),
            scenario: v.get("scenario")?.as_str()?.to_string(),
            cycles: u(v, "cycles")?,
            instructions: u(v, "instructions")?,
            ecc: EccStats {
                corrected: u(ecc, "corrected")?,
                detected_double: u(ecc, "detected_double")?,
                silent: u(ecc, "silent")?,
                corrupt_sig: u(ecc, "corrupt_sig")?,
                recovery_cycles: u(ecc, "recovery_cycles")?,
            },
            bus: BusFaultStats {
                timeouts: u(bus, "timeouts")?,
                retries: u(bus, "retries")?,
                recovery_cycles: u(bus, "recovery_cycles")?,
            },
            pgtbl: PgTblFaultStats {
                corruptions: u(pgtbl, "corruptions")?,
                reloads: u(pgtbl, "reloads")?,
                recovery_cycles: u(pgtbl, "recovery_cycles")?,
            },
            caps: CapsFaultStats {
                corruptions: u(caps, "corruptions")?,
                reloads: u(caps, "reloads")?,
                recovery_cycles: u(caps, "recovery_cycles")?,
                unrecoverable: u(caps, "unrecoverable")?,
            },
            remap_faults: u(v, "remap_faults")?,
            rejected_reads: u(v, "rejected_reads")?,
            rejected_writes: u(v, "rejected_writes")?,
            syscall_failures: u(v, "syscall_failures")?,
            violations,
        })
    }
}

/// JSON for one chaos case.
fn case_json(o: &ChaosOutcome) -> Json {
    let mut c = Json::obj();
    c.set("workload", Json::Str(o.workload.clone()));
    c.set("scenario", Json::Str(o.scenario.clone()));
    c.set("cycles", Json::UInt(o.cycles));
    c.set("instructions", Json::UInt(o.instructions));

    let mut ecc = Json::obj();
    ecc.set("corrected", Json::UInt(o.ecc.corrected));
    ecc.set("detected_double", Json::UInt(o.ecc.detected_double));
    ecc.set("silent", Json::UInt(o.ecc.silent));
    ecc.set("corrupt_sig", Json::UInt(o.ecc.corrupt_sig));
    ecc.set("recovery_cycles", Json::UInt(o.ecc.recovery_cycles));
    c.set("ecc", ecc);

    let mut bus = Json::obj();
    bus.set("timeouts", Json::UInt(o.bus.timeouts));
    bus.set("retries", Json::UInt(o.bus.retries));
    bus.set("recovery_cycles", Json::UInt(o.bus.recovery_cycles));
    c.set("bus", bus);

    let mut pgtbl = Json::obj();
    pgtbl.set("corruptions", Json::UInt(o.pgtbl.corruptions));
    pgtbl.set("reloads", Json::UInt(o.pgtbl.reloads));
    pgtbl.set("recovery_cycles", Json::UInt(o.pgtbl.recovery_cycles));
    c.set("pgtbl", pgtbl);

    let mut caps = Json::obj();
    caps.set("corruptions", Json::UInt(o.caps.corruptions));
    caps.set("reloads", Json::UInt(o.caps.reloads));
    caps.set("recovery_cycles", Json::UInt(o.caps.recovery_cycles));
    caps.set("unrecoverable", Json::UInt(o.caps.unrecoverable));
    c.set("caps", caps);

    c.set("remap_faults", Json::UInt(o.remap_faults));
    c.set("rejected_reads", Json::UInt(o.rejected_reads));
    c.set("rejected_writes", Json::UInt(o.rejected_writes));
    c.set("syscall_failures", Json::UInt(o.syscall_failures));
    c.set(
        "violations",
        Json::Arr(o.violations.iter().map(|s| Json::Str(s.clone())).collect()),
    );
    c
}

/// Serializes a chaos run: schema `impulse-chaos-v1`, per-case counts,
/// per-fault-class totals with recovery-cycle attribution, and the
/// flattened violation list (`ok` is true iff it is empty).
pub fn chaos_document(seed: u64, outcomes: &[ChaosOutcome]) -> Json {
    let mut doc = Json::obj();
    doc.set("schema", Json::Str("impulse-chaos-v1".into()));
    doc.set("seed", Json::UInt(seed));
    doc.set("cases", Json::Arr(outcomes.iter().map(case_json).collect()));

    let sum = |f: fn(&ChaosOutcome) -> u64| outcomes.iter().map(f).sum::<u64>();
    let mut totals = Json::obj();
    // Per-class totals come from the registry, in registry order — the
    // document schema and the storm mix share one source of truth.
    for class in &FAULT_CLASSES {
        totals.set(class.key, (class.totals)(outcomes));
    }
    let mut degrade = Json::obj();
    degrade.set("remap_faults", Json::UInt(sum(|o| o.remap_faults)));
    degrade.set("rejected_reads", Json::UInt(sum(|o| o.rejected_reads)));
    degrade.set("rejected_writes", Json::UInt(sum(|o| o.rejected_writes)));
    degrade.set("syscall_failures", Json::UInt(sum(|o| o.syscall_failures)));
    totals.set("degrade", degrade);
    doc.set("totals", totals);

    let violations: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.violations.iter().cloned())
        .chain(cross_case_violations(outcomes))
        .collect();
    doc.set(
        "violations",
        Json::Arr(violations.iter().map(|s| Json::Str(s.clone())).collect()),
    );
    doc.set("ok", Json::Bool(violations.is_empty()));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;

    #[test]
    fn ecc_scenario_corrects_all_singles_with_zero_data_diff() {
        let o = run_case(ChaosWorkload::Diagonal, FaultScenario::DramEcc, 1999);
        assert!(o.ecc.corrected > 0, "schedule fired");
        assert_eq!(o.ecc.detected_double, 0);
        assert_eq!(o.ecc.silent, 0);
        assert_eq!(o.ecc.corrupt_sig, 0, "corrected data is byte-identical");
        assert!(o.violations.is_empty(), "{:?}", o.violations);
    }

    #[test]
    fn no_ecc_scenario_shows_tracked_silent_corruption() {
        let o = run_case(ChaosWorkload::Smvp, FaultScenario::DramNoEcc, 7);
        assert!(o.ecc.silent > 0);
        assert_ne!(o.ecc.corrupt_sig, 0, "corruption leaves a signature");
        assert_eq!(o.ecc.recovery_cycles, 0, "no ECC, no datapath penalty");
        assert!(o.violations.is_empty(), "{:?}", o.violations);
    }

    #[test]
    fn caps_scenario_recovers_every_corruption() {
        for w in ChaosWorkload::ALL {
            let o = run_case(w, FaultScenario::Caps, 1999);
            assert!(o.violations.is_empty(), "{:?}", o.violations);
            assert!(
                o.caps.corruptions > 0,
                "the caps preamble must give the injector validations to hit"
            );
            assert_eq!(o.caps.reloads, o.caps.corruptions);
            assert_eq!(o.caps.unrecoverable, 0);
            assert_eq!(o.ecc.corrupt_sig, 0, "caps faults never touch data");
        }
    }

    #[test]
    fn storm_keeps_every_bound() {
        for w in ChaosWorkload::ALL {
            let o = run_case(w, FaultScenario::Storm, 0xC4A05);
            assert!(o.violations.is_empty(), "{:?}", o.violations);
        }
    }

    #[test]
    fn misuse_probe_reports_typed_errors_and_recovers() {
        let o = run_misuse_probe(1999);
        assert_eq!(o.syscall_failures, 3);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
    }

    #[test]
    fn registry_covers_grid_storm_and_document() {
        // Every registered class contributes knobs to the storm mix...
        let quiet = FaultConfig::none();
        for class in &FAULT_CLASSES {
            let mut f = FaultConfig::none();
            (class.storm)(&mut f);
            assert!(
                format!("{f:?}") != format!("{quiet:?}"),
                "{} contributes nothing to the storm",
                class.key
            );
            // ...names at least one dedicated scenario in the grid...
            assert!(
                !class.scenarios.is_empty(),
                "{} has no dedicated scenario",
                class.key
            );
            for s in class.scenarios {
                assert!(FaultScenario::ALL.contains(s), "{} not in grid", s.name());
            }
        }
        // ...and owns a totals section in the emitted document.
        let doc = chaos_document(1, &[]);
        let totals = doc.get("totals").expect("totals section");
        for class in &FAULT_CLASSES {
            assert!(
                totals.get(class.key).is_some(),
                "totals missing `{}`",
                class.key
            );
        }
    }

    #[test]
    fn chaos_grid_is_deterministic_across_worker_counts() {
        let run = |workers| {
            let jobs: Vec<_> = chaos_jobs(1999)
                .into_iter()
                .map(|(_, j)| move || j())
                .collect();
            let outcomes = runner::run_ordered(jobs, workers);
            format!("{:#}\n", chaos_document(1999, &outcomes))
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel, "chaos.json must not depend on workers");
        assert!(serial.contains("impulse-chaos-v1"));
        assert!(serial.contains("\"ok\": true"), "grid is violation-free");
    }
}
