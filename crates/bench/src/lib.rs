//! Shared harness code for the table/figure regenerator binaries.
//!
//! Each binary reproduces one table or figure from the paper:
//!
//! * `table1` — NAS conjugate gradient (sparse matrix-vector product)
//! * `table2` — tiled dense matrix-matrix product
//! * `fig1` — the diagonal remapping example
//! * `ablation_dram` — the designed DRAM scheduler (Section 2.2)
//! * `superpage` — the superpage/TLB experiment (Section 6)
//! * `ipc` — IPC scatter/gather (Section 6)
//!
//! Run with `--paper` for the paper's full problem sizes (slower), or
//! with the scaled defaults for a quick check. The printed tables carry
//! the paper's reported numbers alongside the measured ones so the shape
//! comparison is immediate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod harness;
pub mod journal;
pub mod runner;

use impulse_sim::Report;

/// The four prefetch configurations every table sweeps: the paper's
/// columns "Standard", "Impulse" (controller prefetch), "L1 cache"
/// prefetch, and "both".
pub const PREFETCH_COLUMNS: [(bool, bool, &str); 4] = [
    (false, false, "standard"),
    (true, false, "impulse-pf"),
    (false, true, "L1-pf"),
    (true, true, "both"),
];

/// One section of a paper-style table: a memory-system configuration and
/// its four prefetch-column reports.
#[derive(Clone, Debug)]
pub struct TableSection {
    /// Section title (e.g. "Conventional memory system").
    pub title: String,
    /// Reports for the four prefetch columns.
    pub reports: Vec<Report>,
    /// The paper's reported values for the same section, if any:
    /// `(time_bcycles, l1, l2, mem, avg_load, speedup)` per column.
    pub paper: Option<[PaperRow; 4]>,
}

/// The paper's reported metrics for one table cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// Time in billions of cycles.
    pub time: f64,
    /// L1 hit ratio (%).
    pub l1: f64,
    /// L2 hit ratio (%).
    pub l2: f64,
    /// Memory hit ratio (%).
    pub mem: f64,
    /// Average load time (cycles).
    pub avg_load: f64,
    /// Speedup over "Conventional, no prefetch".
    pub speedup: f64,
}

/// Prints a full table in the paper's layout (metrics as rows, prefetch
/// configurations as columns), with the paper's numbers interleaved when
/// available. `baseline` is the conventional/no-prefetch report that
/// speedups are computed against.
pub fn print_table(title: &str, sections: &[TableSection], baseline: &Report) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
    for section in sections {
        println!("\n--- {} ---", section.title);
        print!("{:<26}", "");
        for (_, _, label) in PREFETCH_COLUMNS {
            print!("{label:>12}");
        }
        println!();

        let row = |name: &str, f: &dyn Fn(&Report) -> String| {
            print!("{name:<26}");
            for r in &section.reports {
                print!("{:>12}", f(r));
            }
            println!();
        };
        let paper_row = |name: &str, f: &dyn Fn(&PaperRow) -> String| {
            if let Some(p) = &section.paper {
                print!("{name:<26}");
                for pr in p {
                    print!("{:>12}", f(pr));
                }
                println!();
            }
        };

        row("time (Mcycles)", &|r| {
            format!("{:.2}", r.cycles as f64 / 1e6)
        });
        paper_row("  paper (Gcycles)", &|p| format!("{:.2}", p.time));
        row("L1 hit ratio", &|r| {
            format!("{:.1}%", 100.0 * r.mem.l1_ratio())
        });
        paper_row("  paper", &|p| format!("{:.1}%", p.l1));
        row("L2 hit ratio", &|r| {
            format!("{:.1}%", 100.0 * r.mem.l2_ratio())
        });
        paper_row("  paper", &|p| format!("{:.1}%", p.l2));
        row("mem hit ratio", &|r| {
            format!("{:.1}%", 100.0 * r.mem.mem_ratio())
        });
        paper_row("  paper", &|p| format!("{:.1}%", p.mem));
        row("avg load time", &|r| {
            format!("{:.2}", r.mem.avg_load_time())
        });
        paper_row("  paper", &|p| format!("{:.2}", p.avg_load));
        row("speedup", &|r| format!("{:.2}", r.speedup_over(baseline)));
        paper_row("  paper", &|p| {
            if p.speedup == 0.0 {
                "—".to_string()
            } else {
                format!("{:.2}", p.speedup)
            }
        });
    }
    println!();
}

/// Minimal command-line handling shared by the regenerator binaries:
/// recognizes `--paper`, `--resume`, `journal=<path>`, and integer
/// `key=value` overrides.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// Run the paper's full problem size.
    pub paper: bool,
    /// Resume from the run journal instead of starting fresh.
    pub resume: bool,
    /// `journal=<path>` override for the run journal location.
    pub journal: Option<String>,
    /// `key=value` overrides.
    pub overrides: Vec<(String, u64)>,
    /// Raw `jobs=` value; validated (typed) by [`Args::jobs`].
    jobs_raw: Option<String>,
}

impl Args {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut out = Args::default();
        for a in std::env::args().skip(1) {
            if a == "--paper" {
                out.paper = true;
            } else if a == "--resume" {
                out.resume = true;
            } else if let Some(v) = a.strip_prefix("journal=") {
                out.journal = Some(v.to_string());
            } else if let Some(v) = a.strip_prefix("jobs=") {
                out.jobs_raw = Some(v.to_string());
            } else if let Some((k, v)) = a.split_once('=') {
                let v = v
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("expected integer in `{a}`"));
                out.overrides
                    .push((k.trim_start_matches('-').to_string(), v));
            } else {
                panic!("unrecognized argument `{a}` (use --paper, --resume, or key=value)");
            }
        }
        out
    }

    /// Fetches an override or the default.
    pub fn get(&self, key: &str, default: u64) -> u64 {
        self.overrides
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(default)
    }

    /// The validated worker count.
    ///
    /// # Errors
    ///
    /// `jobs=0` and non-numeric values come back as a typed
    /// [`runner::ArgError`] — never a silent fallback to the default.
    pub fn jobs(&self) -> Result<usize, runner::ArgError> {
        match &self.jobs_raw {
            None => Ok(runner::default_jobs()),
            Some(v) => runner::parse_jobs(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_columns_cover_all_combinations() {
        let set: std::collections::HashSet<(bool, bool)> =
            PREFETCH_COLUMNS.iter().map(|&(a, b, _)| (a, b)).collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn args_defaults_and_overrides() {
        let a = Args {
            overrides: vec![("rows".into(), 100), ("rows".into(), 200)],
            ..Args::default()
        };
        assert_eq!(a.get("rows", 5), 200, "last override wins");
        assert_eq!(a.get("cols", 7), 7);
    }

    #[test]
    fn args_jobs_is_typed() {
        assert_eq!(
            Args::default().jobs().expect("default is valid"),
            runner::default_jobs()
        );
        let zero = Args {
            jobs_raw: Some("0".into()),
            ..Args::default()
        };
        assert!(zero.jobs().is_err(), "jobs=0 must not silently become 1");
        let garbage = Args {
            jobs_raw: Some("four".into()),
            ..Args::default()
        };
        assert!(garbage.jobs().is_err());
        let four = Args {
            jobs_raw: Some("4".into()),
            ..Args::default()
        };
        assert_eq!(four.jobs().expect("valid"), 4);
    }
}
