//! Shared harness code for the table/figure regenerator binaries.
//!
//! Each binary reproduces one table or figure from the paper:
//!
//! * `table1` — NAS conjugate gradient (sparse matrix-vector product)
//! * `table2` — tiled dense matrix-matrix product
//! * `fig1` — the diagonal remapping example
//! * `ablation_dram` — the designed DRAM scheduler (Section 2.2)
//! * `superpage` — the superpage/TLB experiment (Section 6)
//! * `ipc` — IPC scatter/gather (Section 6)
//!
//! Run with `--paper` for the paper's full problem sizes (slower), or
//! with the scaled defaults for a quick check. The printed tables carry
//! the paper's reported numbers alongside the measured ones so the shape
//! comparison is immediate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caps_chaos;
pub mod chaos;
pub mod experiments;
pub mod harness;
pub mod journal;
pub mod replay_mode;
pub mod runner;
#[cfg(unix)]
pub mod serve_support;
pub mod tier_chaos;

use impulse_obs::Json;
use impulse_sim::Report;

/// Prints the paths of every artifact a binary wrote, one per line, as
/// the last thing before exit — no bench binary writes files silently.
pub fn print_artifacts(paths: &[&str]) {
    println!("artifacts:");
    for p in paths {
        println!("  {p}");
    }
}

/// Schema identifier for [`history_record`] lines. v2 records the clean
/// `git describe` of HEAD in `git` and a separate `dirty` boolean; v1
/// baked a `-dirty` suffix into the id, which made revision ids
/// unjoinable against the history.
pub const HISTORY_SCHEMA: &str = "impulse-bench-history-v2";

/// Clean `git describe --always --tags` of HEAD plus a working-tree
/// dirtiness flag (from `git status --porcelain`), for stamping history
/// records. `("unknown", false)` when git (or the repository) is
/// unavailable.
pub fn git_stamp() -> (String, bool) {
    let describe = std::process::Command::new("git")
        .args(["describe", "--always", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.iter().all(|b| b.is_ascii_whitespace()));
    (describe, dirty)
}

/// Builds one `impulse-bench-history-v2` rollup record: a single compact
/// JSON line capturing how a `run_all` invocation went — the revision
/// (clean id + dirty flag), seed, job count, and wall-clock totals.
/// Appended (fsync'd) to `BENCH_history.jsonl`, these lines are the
/// PR-over-PR perf trajectory.
#[allow(clippy::too_many_arguments)]
pub fn history_record(
    git: &str,
    dirty: bool,
    seed: u64,
    jobs: usize,
    experiments_run: u64,
    failed: u64,
    total_wall_ns: u64,
    serial_sum_wall_ns: u64,
) -> Json {
    let mut r = Json::obj();
    r.set("schema", Json::Str(HISTORY_SCHEMA.into()));
    r.set("git", Json::Str(git.into()));
    r.set("dirty", Json::Bool(dirty));
    r.set("seed", Json::UInt(seed));
    r.set("jobs", Json::UInt(jobs as u64));
    r.set("experiments_run", Json::UInt(experiments_run));
    r.set("failed", Json::UInt(failed));
    r.set("total_wall_ns", Json::UInt(total_wall_ns));
    r.set("serial_sum_wall_ns", Json::UInt(serial_sum_wall_ns));
    r
}

/// Appends `record` as one compact JSONL line to `path` and flushes it
/// to stable storage before returning (the same crash-safety contract as
/// the run journal), creating parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_history(path: &std::path::Path, record: &Json) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(format!("{record}\n").as_bytes())?;
    f.sync_data()
}

/// The four prefetch configurations every table sweeps: the paper's
/// columns "Standard", "Impulse" (controller prefetch), "L1 cache"
/// prefetch, and "both".
pub const PREFETCH_COLUMNS: [(bool, bool, &str); 4] = [
    (false, false, "standard"),
    (true, false, "impulse-pf"),
    (false, true, "L1-pf"),
    (true, true, "both"),
];

/// One section of a paper-style table: a memory-system configuration and
/// its four prefetch-column reports.
#[derive(Clone, Debug)]
pub struct TableSection {
    /// Section title (e.g. "Conventional memory system").
    pub title: String,
    /// Reports for the four prefetch columns.
    pub reports: Vec<Report>,
    /// The paper's reported values for the same section, if any:
    /// `(time_bcycles, l1, l2, mem, avg_load, speedup)` per column.
    pub paper: Option<[PaperRow; 4]>,
}

/// The paper's reported metrics for one table cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// Time in billions of cycles.
    pub time: f64,
    /// L1 hit ratio (%).
    pub l1: f64,
    /// L2 hit ratio (%).
    pub l2: f64,
    /// Memory hit ratio (%).
    pub mem: f64,
    /// Average load time (cycles).
    pub avg_load: f64,
    /// Speedup over "Conventional, no prefetch".
    pub speedup: f64,
}

/// Prints a full table in the paper's layout (metrics as rows, prefetch
/// configurations as columns), with the paper's numbers interleaved when
/// available. `baseline` is the conventional/no-prefetch report that
/// speedups are computed against.
pub fn print_table(title: &str, sections: &[TableSection], baseline: &Report) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
    for section in sections {
        println!("\n--- {} ---", section.title);
        print!("{:<26}", "");
        for (_, _, label) in PREFETCH_COLUMNS {
            print!("{label:>12}");
        }
        println!();

        let row = |name: &str, f: &dyn Fn(&Report) -> String| {
            print!("{name:<26}");
            for r in &section.reports {
                print!("{:>12}", f(r));
            }
            println!();
        };
        let paper_row = |name: &str, f: &dyn Fn(&PaperRow) -> String| {
            if let Some(p) = &section.paper {
                print!("{name:<26}");
                for pr in p {
                    print!("{:>12}", f(pr));
                }
                println!();
            }
        };

        row("time (Mcycles)", &|r| {
            format!("{:.2}", r.cycles as f64 / 1e6)
        });
        paper_row("  paper (Gcycles)", &|p| format!("{:.2}", p.time));
        row("L1 hit ratio", &|r| {
            format!("{:.1}%", 100.0 * r.mem.l1_ratio())
        });
        paper_row("  paper", &|p| format!("{:.1}%", p.l1));
        row("L2 hit ratio", &|r| {
            format!("{:.1}%", 100.0 * r.mem.l2_ratio())
        });
        paper_row("  paper", &|p| format!("{:.1}%", p.l2));
        row("mem hit ratio", &|r| {
            format!("{:.1}%", 100.0 * r.mem.mem_ratio())
        });
        paper_row("  paper", &|p| format!("{:.1}%", p.mem));
        row("avg load time", &|r| {
            format!("{:.2}", r.mem.avg_load_time())
        });
        paper_row("  paper", &|p| format!("{:.2}", p.avg_load));
        row("speedup", &|r| format!("{:.2}", r.speedup_over(baseline)));
        paper_row("  paper", &|p| {
            if p.speedup == 0.0 {
                "—".to_string()
            } else {
                format!("{:.2}", p.speedup)
            }
        });
    }
    println!();
}

/// Minimal command-line handling shared by the regenerator binaries:
/// recognizes `--paper`, `--resume`, `journal=<path>`, and integer
/// `key=value` overrides.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// Run the paper's full problem size.
    pub paper: bool,
    /// Resume from the run journal instead of starting fresh.
    pub resume: bool,
    /// `journal=<path>` override for the run journal location.
    pub journal: Option<String>,
    /// `mode=<execute|replay>` backend selector (binary-interpreted).
    pub mode: Option<String>,
    /// `key=value` overrides.
    pub overrides: Vec<(String, u64)>,
    /// Raw `jobs=` value; validated (typed) by [`Args::jobs`].
    jobs_raw: Option<String>,
}

impl Args {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut out = Args::default();
        for a in std::env::args().skip(1) {
            if a == "--paper" {
                out.paper = true;
            } else if a == "--resume" {
                out.resume = true;
            } else if let Some(v) = a.strip_prefix("journal=") {
                out.journal = Some(v.to_string());
            } else if let Some(v) = a.strip_prefix("mode=") {
                out.mode = Some(v.to_string());
            } else if let Some(v) = a.strip_prefix("jobs=") {
                out.jobs_raw = Some(v.to_string());
            } else if let Some((k, v)) = a.split_once('=') {
                let v = v
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("expected integer in `{a}`"));
                out.overrides
                    .push((k.trim_start_matches('-').to_string(), v));
            } else {
                panic!("unrecognized argument `{a}` (use --paper, --resume, or key=value)");
            }
        }
        out
    }

    /// Fetches an override or the default.
    pub fn get(&self, key: &str, default: u64) -> u64 {
        self.overrides
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(default)
    }

    /// The validated worker count.
    ///
    /// # Errors
    ///
    /// `jobs=0` and non-numeric values come back as a typed
    /// [`runner::ArgError`] — never a silent fallback to the default.
    pub fn jobs(&self) -> Result<usize, runner::ArgError> {
        match &self.jobs_raw {
            None => Ok(runner::default_jobs()),
            Some(v) => runner::parse_jobs(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_columns_cover_all_combinations() {
        let set: std::collections::HashSet<(bool, bool)> =
            PREFETCH_COLUMNS.iter().map(|&(a, b, _)| (a, b)).collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn args_defaults_and_overrides() {
        let a = Args {
            overrides: vec![("rows".into(), 100), ("rows".into(), 200)],
            ..Args::default()
        };
        assert_eq!(a.get("rows", 5), 200, "last override wins");
        assert_eq!(a.get("cols", 7), 7);
    }

    #[test]
    fn history_record_round_trips_and_appends() {
        let rec = history_record("v1.2-3-gabc", true, 7, 4, 24, 1, 1_000, 3_000);
        assert_eq!(
            rec.get("schema").and_then(Json::as_str),
            Some(HISTORY_SCHEMA)
        );
        assert_eq!(rec.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(rec.get("dirty").and_then(Json::as_bool), Some(true));
        assert!(
            !rec.get("git")
                .and_then(Json::as_str)
                .unwrap()
                .contains("-dirty"),
            "dirtiness travels in its own field, not baked into the id"
        );
        let mut p = std::env::temp_dir();
        p.push(format!("impulse-history-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        append_history(&p, &rec).expect("append");
        append_history(&p, &rec).expect("append again");
        let text = std::fs::read_to_string(&p).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one line per run");
        let back = Json::parse(lines[1]).expect("valid JSON line");
        assert_eq!(back.get("git").and_then(Json::as_str), Some("v1.2-3-gabc"));
        assert_eq!(back.get("experiments_run").and_then(Json::as_u64), Some(24));
        std::fs::remove_file(&p).expect("cleanup");
    }

    #[test]
    fn args_jobs_is_typed() {
        assert_eq!(
            Args::default().jobs().expect("default is valid"),
            runner::default_jobs()
        );
        let zero = Args {
            jobs_raw: Some("0".into()),
            ..Args::default()
        };
        assert!(zero.jobs().is_err(), "jobs=0 must not silently become 1");
        let garbage = Args {
            jobs_raw: Some("four".into()),
            ..Args::default()
        };
        assert!(garbage.jobs().is_err());
        let four = Args {
            jobs_raw: Some("4".into()),
            ..Args::default()
        };
        assert_eq!(four.jobs().expect("valid"), 4);
    }
}
