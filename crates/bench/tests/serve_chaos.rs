//! Fast in-process integration tests for the experiment daemon: the
//! request lifecycle (coalescing, caching, typed errors, restart
//! recovery) against a synthetic backend, cheap enough for tier-1.
//!
//! The full suite — SIGKILL mid-publish, frame corruption floods, the
//! real catalog backend — lives in the `chaos_serve` binary.
#![cfg(unix)]

use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use impulse_serve::{
    Backend, Class, Client, ClientError, Response, RetryPolicy, RunRequest, Server, ServerConfig,
    ServerError, ServerErrorKind, StoredResult,
};
use impulse_types::TierPolicy;

struct TinyBackend {
    executed: AtomicU64,
}

impl TinyBackend {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            executed: AtomicU64::new(0),
        })
    }
}

impl Backend for TinyBackend {
    fn names(&self) -> Vec<String> {
        vec!["tiny/a".into(), "tiny/b".into()]
    }

    fn config_digest(&self, experiment: &str, _seed: u64, tier: TierPolicy) -> Option<u64> {
        self.names().iter().any(|n| n == experiment).then(|| {
            impulse_types::ident::mix(
                impulse_types::ident::digest64(experiment.as_bytes()),
                impulse_types::ident::digest64(tier.name().as_bytes()),
            )
        })
    }

    fn run(&self, experiment: &str, seed: u64, _tier: TierPolicy) -> Result<StoredResult, String> {
        thread::sleep(Duration::from_millis(50));
        self.executed.fetch_add(1, Ordering::SeqCst);
        Ok(StoredResult {
            csv: format!("{experiment},{seed}"),
            report: format!("{{\"name\": \"{experiment}\"}}"),
        })
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("impulse-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn config(tag: &str) -> ServerConfig {
    let mut cfg = ServerConfig::new(
        scratch(&format!("{tag}.sock")),
        scratch(&format!("{tag}.journal")),
    );
    cfg.workers = 2;
    cfg.watchdog_ms = 5_000;
    cfg.request_timeout_ms = 10_000;
    cfg.idle_timeout_ms = 1_000;
    cfg
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_backoff_ms: 5,
        max_backoff_ms: 50,
        recv_timeout_ms: 10_000,
    }
}

fn req(experiment: &str, seed: u64) -> RunRequest {
    RunRequest {
        experiment: experiment.into(),
        seed,
        tenant: "test".into(),
        class: Class::Interactive,
        deadline_ms: 0,
        tier: TierPolicy::None,
    }
}

fn start(backend: Arc<dyn Backend>, cfg: ServerConfig) -> thread::JoinHandle<std::io::Result<()>> {
    let server = Server::start(backend, cfg).expect("server start");
    thread::spawn(move || server.run())
}

fn stop(socket: &Path, handle: thread::JoinHandle<std::io::Result<()>>) {
    Client::new(socket, policy(), 0)
        .shutdown()
        .expect("shutdown");
    handle.join().expect("join").expect("accept loop");
}

#[test]
fn lifecycle_coalesce_cache_restart() {
    let backend = TinyBackend::new();
    let counted = Arc::clone(&backend);
    let cfg = config("lifecycle");
    let (socket, journal) = (cfg.socket.clone(), cfg.journal.clone());
    let _ = std::fs::remove_file(&journal);
    let handle = start(backend, cfg.clone());

    // Concurrent duplicates coalesce onto one execution.
    let bodies: Vec<(String, String)> = thread::scope(|scope| {
        (0..4)
            .map(|i| {
                let socket = socket.clone();
                scope.spawn(move || {
                    Client::new(&socket, policy(), i)
                        .run(&req("tiny/a", 5))
                        .expect("duplicate request")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                let r = h.join().expect("client thread");
                (r.csv, r.report)
            })
            .collect()
    });
    assert!(bodies.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(counted.executed.load(Ordering::SeqCst), 1);

    // Follow-up is a cache hit; different seed is a fresh identity.
    let hit = Client::new(&socket, policy(), 9)
        .run(&req("tiny/a", 5))
        .expect("cached");
    assert!(hit.cached);
    let other = Client::new(&socket, policy(), 10)
        .run(&req("tiny/a", 6))
        .expect("other seed");
    assert!(!other.cached);
    assert_eq!(counted.executed.load(Ordering::SeqCst), 2);

    // A different tier policy is a different cache identity too.
    let mut tiered_req = req("tiny/a", 5);
    tiered_req.tier = TierPolicy::Cache;
    let tiered = Client::new(&socket, policy(), 20)
        .run(&tiered_req)
        .expect("tiered request");
    assert!(!tiered.cached, "tier must be part of the cache key");
    assert_eq!(counted.executed.load(Ordering::SeqCst), 3);

    // Unknown experiments and malformed frames are typed, not hangs.
    let err = Client::new(&socket, policy(), 11)
        .run(&req("tiny/nope", 5))
        .expect_err("unknown experiment");
    assert_eq!(
        err,
        ClientError::Server(ServerError::new(
            ServerErrorKind::UnknownExperiment,
            "no catalog entry named `tiny/nope`",
        ))
    );
    let mut raw = UnixStream::connect(&socket).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    raw.write_all(b"not a frame at all").expect("send");
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");
    match impulse_serve::wire::read_frame(&mut raw) {
        Ok(frame) => {
            let resp = Response::from_frame(&frame).expect("decodable");
            assert!(
                matches!(resp, Response::Error(ref e) if e.kind == ServerErrorKind::BadRequest),
                "garbage input must yield a typed bad-request, got {resp:?}"
            );
        }
        Err(impulse_serve::wire::WireError::Closed) => {} // clean close: acceptable
        Err(e) => panic!("unexpected transport failure: {e}"),
    }
    stop(&socket, handle);

    // Restart over the same journal: results survive, nothing re-runs.
    let backend = TinyBackend::new();
    let counted = Arc::clone(&backend);
    let mut cfg2 = cfg;
    cfg2.socket = scratch("lifecycle2.sock");
    let socket2 = cfg2.socket.clone();
    let handle = start(backend, cfg2);
    let recovered = Client::new(&socket2, policy(), 12)
        .run(&req("tiny/a", 5))
        .expect("recovered");
    assert!(recovered.cached, "restarted server must serve from journal");
    assert_eq!((recovered.csv, recovered.report), bodies[0].clone());
    assert_eq!(counted.executed.load(Ordering::SeqCst), 0);
    stop(&socket2, handle);
    let _ = std::fs::remove_file(&journal);
}
