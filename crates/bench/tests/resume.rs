//! End-to-end crash/resume contract: a run interrupted at an arbitrary
//! journal position — including a torn final record — and completed with
//! `--resume` must emit **byte-identical** final CSV/JSON to an
//! uninterrupted run, and a deliberately panicking experiment must be
//! isolated to a typed error record while the rest of the grid finishes.

use std::path::PathBuf;
use std::sync::Arc;

use impulse_bench::experiments::{
    csv_from_outcomes, document_from_outcomes, report_artifacts, run_all_experiments, Experiment,
    DEFAULT_SEED,
};
use impulse_bench::journal::{self, RunArtifacts};
use impulse_bench::runner::{SharedJob, SuperviseOpts};
use impulse_sim::Report;

fn temp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "impulse-resume-test-{}-{name}.jsonl",
        std::process::id()
    ));
    p
}

/// The quick quarter of the catalog — enough to exercise multiple
/// journal records without making the test slow.
fn reduced_catalog() -> Vec<(String, SharedJob<Report>)> {
    run_all_experiments(DEFAULT_SEED)
        .into_iter()
        .filter(|e| ["fig1/", "ipc/"].iter().any(|p| e.name().starts_with(p)))
        .map(Experiment::into_job)
        .collect()
}

fn render(outcomes: &[(String, Result<RunArtifacts, String>)]) -> (String, String) {
    (
        csv_from_outcomes(outcomes),
        format!("{:#}\n", document_from_outcomes(DEFAULT_SEED, outcomes)),
    )
}

#[test]
fn interrupted_run_resumes_byte_identically() {
    let catalog = reduced_catalog();
    assert_eq!(catalog.len(), 4, "reduced catalog covers two pairs");
    let opts = SuperviseOpts::default();

    // Reference: one uninterrupted run.
    let ref_path = temp_journal("reference");
    let _ = std::fs::remove_file(&ref_path);
    let reference = journal::run_resumable(
        catalog.clone(),
        DEFAULT_SEED,
        2,
        &opts,
        &ref_path,
        false,
        &report_artifacts,
    )
    .expect("reference run");
    let (ref_csv, ref_json) = render(&reference);
    assert!(reference.iter().all(|(_, o)| o.is_ok()));

    // Simulate a SIGKILL after every prefix of the journal, with the
    // next record torn in half — the on-disk states a crash can leave.
    let text = std::fs::read_to_string(&ref_path).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    for keep in 0..lines.len() {
        let crash_path = temp_journal(&format!("crash-{keep}"));
        let mut partial: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
        partial.push_str(&lines[keep][..lines[keep].len() / 2]); // torn record
        std::fs::write(&crash_path, &partial).expect("write crashed journal");

        let resumed = journal::run_resumable(
            catalog.clone(),
            DEFAULT_SEED,
            2,
            &opts,
            &crash_path,
            true,
            &report_artifacts,
        )
        .expect("resumed run");
        let (csv, json) = render(&resumed);
        assert_eq!(csv, ref_csv, "CSV diverged resuming after {keep} records");
        assert_eq!(
            json, ref_json,
            "JSON diverged resuming after {keep} records"
        );
        std::fs::remove_file(&crash_path).expect("cleanup");
    }
    std::fs::remove_file(&ref_path).expect("cleanup");
}

#[test]
fn panicking_experiment_is_isolated_and_journaled() {
    let mut catalog = reduced_catalog();
    let poison: SharedJob<Report> = Arc::new(|| panic!("deliberately poisoned experiment"));
    catalog.insert(1, ("poison/always-panics".to_string(), poison));
    let opts = SuperviseOpts {
        timeout: None,
        max_attempts: 1,
    };

    let path = temp_journal("poison");
    let _ = std::fs::remove_file(&path);
    let outcomes = journal::run_resumable(
        catalog,
        DEFAULT_SEED,
        2,
        &opts,
        &path,
        false,
        &report_artifacts,
    )
    .expect("run completes despite the poisoned job");

    // The grid completed around the poisoned experiment...
    assert_eq!(outcomes.len(), 5);
    assert_eq!(outcomes.iter().filter(|(_, o)| o.is_ok()).count(), 4);
    let (_, poisoned) = outcomes
        .iter()
        .find(|(id, _)| id == "poison/always-panics")
        .expect("poisoned outcome present");
    let err = poisoned.as_ref().expect_err("poisoned job failed");
    assert_eq!(err, "job panicked: deliberately poisoned experiment");

    // ...and its failure is a typed Err record in the journal.
    let recovered = journal::load(&path).expect("journal loads");
    let latest = recovered.latest_for_seed(DEFAULT_SEED);
    assert_eq!(
        latest
            .get("poison/always-panics")
            .expect("journaled")
            .outcome
            .as_ref()
            .unwrap_err(),
        "job panicked: deliberately poisoned experiment"
    );

    // The final document names the failure without losing the grid.
    let doc = format!("{:#}", document_from_outcomes(DEFAULT_SEED, &outcomes));
    assert!(doc.contains("poison/always-panics"));
    assert!(doc.contains("job panicked: deliberately poisoned experiment"));
    std::fs::remove_file(&path).expect("cleanup");
}
