//! Torn-tail recovery for the JSONL run journal, exhaustively: a crash
//! is simulated by truncating the file at **every byte offset**, and
//! recovery must always yield exactly the records whose lines survived
//! intact — never an error, never a misread record, and the journal
//! must accept appends again after recovery.

use std::path::PathBuf;

use impulse_bench::journal::{load, Journal, JournalRecord, RunArtifacts};
use impulse_obs::Json;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "impulse-journal-torn-{}-{name}",
        std::process::id()
    ));
    p
}

fn record(id: &str, csv: &str) -> JournalRecord {
    let mut j = Json::obj();
    j.set("name", Json::Str(id.into()));
    j.set("cycles", Json::UInt(123_456));
    JournalRecord {
        id: id.into(),
        seed: 9,
        outcome: Ok(RunArtifacts {
            csv: csv.into(),
            json: j,
        }),
    }
}

#[test]
fn truncation_at_every_byte_offset_recovers_the_intact_prefix() {
    let full = temp_path("full");
    let _ = std::fs::remove_file(&full);
    let records = vec![
        record("grid/a", "a,1,2"),
        record("grid/b", "b,3,4"),
        record("grid/c", "c,5,6"),
    ];
    {
        let mut j = Journal::append_to(&full).expect("open");
        for r in &records {
            j.append(r).expect("append");
        }
    }
    let bytes = std::fs::read(&full).expect("read journal");
    // Byte offsets one past each complete line: a cut at or beyond the
    // offset keeps that line's record.
    let mut line_ends = Vec::new();
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            line_ends.push(i + 1);
        }
    }
    assert_eq!(line_ends.len(), records.len());

    let torn = temp_path("torn");
    for cut in 0..=bytes.len() {
        std::fs::write(&torn, &bytes[..cut]).expect("write torn journal");
        let got = load(&torn).unwrap_or_else(|e| panic!("cut at {cut}: load failed: {e}"));
        // A line survives if all its content bytes are present — the
        // reader tolerates a missing final newline (`end - 1`).
        let intact = line_ends.iter().filter(|&&end| end - 1 <= cut).count();
        assert_eq!(
            got.records,
            records[..intact],
            "cut at {cut}: recovery must yield exactly the intact prefix"
        );
        let cut_mid_line = cut != 0 && line_ends.iter().all(|&end| end != cut && end - 1 != cut);
        assert_eq!(
            got.dropped > 0,
            cut_mid_line,
            "cut at {cut}: a mid-line cut must report dropped data"
        );
    }

    // The journal accepts appends after recovering from a torn tail:
    // recovery is read-side, append-side just keeps going, and the new
    // record lands after the (ignored) torn bytes. This mirrors the
    // resumable driver, which reruns anything the torn tail lost.
    let cut = line_ends[1] + 3; // mid-way through the third record
    std::fs::write(&torn, &bytes[..cut]).expect("write torn journal");
    let fresh = record("grid/d", "d,7,8");
    Journal::append_to(&torn)
        .expect("reopen")
        .append(&fresh)
        .expect("append after tear");
    let got = load(&torn).expect("load after append");
    // Parsing stops at the first torn line, so the post-tear append is
    // only readable once the tear itself is gone — which is exactly why
    // run_resumable truncates stale journals on fresh runs. What must
    // hold here: no error, no misread, and the intact prefix survives.
    assert_eq!(got.records, records[..2]);
    assert!(got.dropped > 0);

    let _ = std::fs::remove_file(&full);
    let _ = std::fs::remove_file(&torn);
}

#[test]
fn bit_flips_anywhere_in_the_tail_line_never_misread() {
    let path = temp_path("flips");
    let _ = std::fs::remove_file(&path);
    let keep = record("grid/keep", "k,1");
    let tail = record("grid/tail", "t,2");
    {
        let mut j = Journal::append_to(&path).expect("open");
        j.append(&keep).expect("append");
        j.append(&tail).expect("append");
    }
    let bytes = std::fs::read(&path).expect("read");
    let tail_start = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("first newline")
        + 1;
    let corrupt_path = temp_path("flips-corrupt");
    for i in tail_start..bytes.len().saturating_sub(1) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x01;
        std::fs::write(&corrupt_path, &corrupt).expect("write");
        let got = load(&corrupt_path).expect("load never errors");
        assert_eq!(got.records[0], keep, "flip at {i}: intact record lost");
        // The tail either still decodes to exactly the original record
        // (the flip landed somewhere both JSON-valid and checksummed —
        // impossible short of a checksum collision) or is dropped.
        if got.records.len() > 1 {
            assert_eq!(got.records[1], tail, "flip at {i}: misread tail");
        }
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&corrupt_path);
}
