//! Every [`ImpulseError`]/`OsError` variant has a **stable** `Display`
//! string, and that string round-trips through the run journal's typed
//! error record unchanged. The journal stores failures as `Display`
//! text, so these strings are a compatibility surface: changing one
//! breaks `--resume` runs that compare against journaled failures.

use impulse_bench::journal::JournalRecord;
use impulse_core::McError;
use impulse_os::{ImpulseError, OsError, PhysError, Pid, VmError};
use impulse_types::VAddr;

/// Exactly one exemplar of each variant, paired with its frozen
/// rendering.
fn exemplars() -> Vec<(ImpulseError, &'static str)> {
    vec![
        (
            ImpulseError::Phys(PhysError::OutOfMemory),
            "physical allocation failed: out of physical memory",
        ),
        (
            ImpulseError::Vm(VmError::NotMapped(0x2a)),
            "virtual memory error: virtual page 0x2a is not mapped",
        ),
        (
            ImpulseError::Vm(VmError::AlreadyMapped(0x2a)),
            "virtual memory error: virtual page 0x2a is already mapped",
        ),
        (
            ImpulseError::Mc(McError::NoFreeDescriptor),
            "memory controller error: all shadow descriptors are in use",
        ),
        (
            ImpulseError::BadAlignment("stride not line-aligned"),
            "bad alignment: stride not line-aligned",
        ),
        (
            ImpulseError::InvalidArg("zero stride"),
            "invalid argument: zero stride",
        ),
        (
            ImpulseError::IndexOutOfBounds { index: 9, limit: 4 },
            "indirection index 9 is out of bounds for a 4-element target",
        ),
        (
            ImpulseError::ShadowExhausted {
                requested: 100,
                available: 64,
            },
            "shadow address space exhausted: 100 bytes requested, 64 available",
        ),
        (
            ImpulseError::TargetNotPhysical(VAddr::new(0x1000)),
            "remap target v:0x1000 is not backed by physical memory",
        ),
        (
            ImpulseError::NotOwner(Pid::INIT),
            "resource is owned by another process (pid0)",
        ),
        (
            ImpulseError::NoSuchProcess(Pid::INIT),
            "no such process: pid0",
        ),
        (
            ImpulseError::RevokedCapability {
                slot: 3,
                stale: 2,
                current: 4,
            },
            "capability slot 3 has been revoked: generation 2 is stale (current 4)",
        ),
        (
            ImpulseError::CapTableCorrupt { slot: 5 },
            "capability table entry 5 failed its integrity check and could not be recovered",
        ),
        (
            ImpulseError::Mc(McError::TierDegraded { channel: 2 }),
            "memory controller error: tier degraded: DRAM channel 2 is offline",
        ),
        (
            ImpulseError::Mc(McError::LineRetired { line: 0x40 }),
            "memory controller error: SCM line 0x40 is permanently retired",
        ),
    ]
}

#[test]
fn every_variant_has_a_stable_display_string() {
    let cases = exemplars();
    // One exemplar per variant (Vm gets both of its inner shapes; Mc
    // additionally freezes both hybrid-tier degradation errors).
    assert_eq!(cases.len(), 15);
    for (err, expected) in &cases {
        assert_eq!(&err.to_string(), expected, "{err:?} rendering drifted");
        // The alias renders identically, of course — it IS the type.
        let aliased: &OsError = err;
        assert_eq!(&aliased.to_string(), expected);
    }
}

#[test]
fn every_variant_round_trips_through_a_journal_error_record() {
    for (i, (err, expected)) in exemplars().into_iter().enumerate() {
        let rec = JournalRecord {
            id: format!("exp/{i}"),
            seed: 7,
            outcome: Err(err.to_string()),
        };
        let back = JournalRecord::from_json(&rec.to_json()).expect("record decodes");
        assert_eq!(back, rec);
        assert_eq!(
            back.outcome.unwrap_err(),
            expected,
            "journaled error text drifted for {err:?}"
        );
    }
}
