//! The parallel runner must not perturb simulated results: a `run_all`
//! style collection serialized from a `jobs=1` run and a `jobs=4` run
//! must be **byte-identical** (CSV and JSON). This is the contract that
//! lets `results.csv` / `results/run_all.json` regenerate reproducibly
//! on any host at any worker count.

use impulse_bench::experiments::{json_document, run_all_experiments, DEFAULT_SEED};
use impulse_bench::runner;
use impulse_sim::Report;

/// Serializes reports exactly as the `run_all` binary does.
fn serialize(reports: &[Report]) -> (String, String) {
    let mut csv = String::from(Report::csv_header());
    csv.push('\n');
    for r in reports {
        csv.push_str(&r.csv_row());
        csv.push('\n');
    }
    let json = format!("{:#}\n", json_document(DEFAULT_SEED, reports));
    (csv, json)
}

/// A reduced experiment list (the quick half of the catalog) run at
/// `workers` threads.
fn collect(workers: usize) -> (String, String) {
    let exps: Vec<_> = run_all_experiments(DEFAULT_SEED)
        .into_iter()
        .filter(|e| {
            ["fig1/", "transpose/", "superpage/", "ipc/"]
                .iter()
                .any(|p| e.name().starts_with(p))
        })
        .collect();
    assert_eq!(exps.len(), 8, "reduced list covers four experiment pairs");
    let reports = runner::run_ordered(exps.into_iter().map(|e| move || e.run()).collect(), workers);
    serialize(&reports)
}

#[test]
fn serial_and_parallel_reports_are_byte_identical() {
    let (csv1, json1) = collect(1);
    let (csv4, json4) = collect(4);
    assert_eq!(csv1, csv4, "CSV must not depend on the worker count");
    assert_eq!(json1, json4, "JSON must not depend on the worker count");
    // Sanity: the serialization isn't trivially empty.
    assert!(csv1.lines().count() == 9);
    assert!(json1.contains("impulse-run-all-v1"));
}
