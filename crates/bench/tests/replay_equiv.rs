//! The replay backend's central contract: `mode=replay` must produce
//! artifacts **byte-identical** to `mode=execute` over the full
//! 28-experiment catalog, at any worker count.
//!
//! Two layers:
//!
//! * Every replayable catalog entry must actually replay
//!   (`replayed == true`) — a silent fallback to the executed report
//!   would make the speedup numbers in `BENCH_run_all.json` fiction.
//!   Cells with an active tier policy (flat or cache) are the
//!   documented exception: they must *refuse* to replay with a typed
//!   reason and fall back to the executed report, never silently
//!   mis-time tier traffic. The `tier/none` baseline cell has no tier
//!   engine and replays like any other entry.
//! * The serialized CSV and JSON documents assembled from replay-mode
//!   reports must equal the ones assembled from direct executions,
//!   byte for byte, and must not depend on the worker count.

use impulse_bench::experiments::{catalog_entries, json_document, DEFAULT_SEED};
use impulse_bench::replay_mode;
use impulse_bench::runner;
use impulse_sim::{Machine, Report};
use impulse_types::TierPolicy;

/// Serializes reports exactly as the `run_all` binary does.
fn serialize(reports: &[Report]) -> (String, String) {
    let mut csv = String::from(Report::csv_header());
    csv.push('\n');
    for r in reports {
        csv.push_str(&r.csv_row());
        csv.push('\n');
    }
    let json = format!("{:#}\n", json_document(DEFAULT_SEED, reports));
    (csv, json)
}

/// Direct execution of every catalog entry, in catalog order.
fn execute_all() -> Vec<Report> {
    catalog_entries(DEFAULT_SEED)
        .iter()
        .map(|e| {
            let mut m = Machine::new(e.config());
            e.drive(&mut m);
            m.report(e.name().to_string())
        })
        .collect()
}

/// The whole catalog through the replay backend at `workers` threads.
fn replay_all(workers: usize) -> Vec<replay_mode::ReplayRun> {
    let jobs: Vec<_> = catalog_entries(DEFAULT_SEED)
        .into_iter()
        .map(|e| move || replay_mode::replay_entry(&e))
        .collect();
    runner::run_ordered(jobs, workers)
}

#[test]
fn full_catalog_replays_byte_identical_to_execution() {
    let executed = serialize(&execute_all());

    let entries = catalog_entries(DEFAULT_SEED);
    let runs = replay_all(4);
    assert_eq!(runs.len(), 28, "the catalog is 28 experiments");
    let mut replayed_count = 0usize;
    for (run, entry) in runs.iter().zip(&entries) {
        if entry.config().tier.policy != TierPolicy::None {
            // Tier machines must fall back with the typed reason, not
            // pretend the batched evaluator timed SCM traffic.
            assert!(
                !run.replayed,
                "{} must refuse to replay (tier state is execution-ordered)",
                run.report.name
            );
            assert_eq!(
                run.fallback_reason.as_deref(),
                Some("unreplayable configuration (fault schedules or hybrid tiers)"),
                "{}",
                run.report.name
            );
        } else {
            assert!(
                run.replayed,
                "{} fell back to execution: {:?}",
                run.report.name, run.fallback_reason
            );
            assert!(run.raw_ops > 0 && run.folded_ops > 0);
            replayed_count += 1;
        }
    }
    assert_eq!(replayed_count, 25, "every tierless entry replays");
    let reports: Vec<Report> = runs.iter().map(|r| r.report.clone()).collect();
    let replayed = serialize(&reports);

    assert_eq!(executed.0, replayed.0, "CSV must match execution");
    assert_eq!(executed.1, replayed.1, "JSON must match execution");

    // The backend must not depend on the worker count either: a serial
    // replay of the same catalog serializes to the same bytes.
    let serial: Vec<Report> = replay_all(1).iter().map(|r| r.report.clone()).collect();
    assert_eq!(serialize(&serial), replayed, "jobs=1 vs jobs=4");
}
