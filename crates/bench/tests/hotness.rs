//! Observability acceptance tests over the full `run_all` catalog:
//! every experiment's flight capture round-trips bit-exactly, and the
//! hotness sketch's top-K agrees with exact per-line counts derived
//! from the capture (the recorder and the sketch observe the same
//! stream, so the capture *is* the ground truth).

use std::collections::HashMap;

use impulse_bench::experiments::{run_all_experiments_obs, ObsSpec, DEFAULT_SEED};
use impulse_core::flight;
use impulse_obs::{Json, SketchConfig};

/// Large enough that no catalog experiment wraps the ring (the biggest
/// capture at quick scale is the transpose walk at 2^18 events).
const FLIGHT_CAPACITY: usize = 1 << 19;
const TOP_K: usize = 32;

#[test]
fn captures_round_trip_and_sketch_topk_agrees_with_exact_counts() {
    // No epoch decay: with the sketch observing every access exactly
    // once, estimates must dominate exact counts (count-min only ever
    // over-counts). Width is sized to the stream: the catalog's widest
    // working sets touch ~100k unique lines, so 2^18 counters per row
    // keep collision inflation below the top-K admission threshold
    // (narrower sketches inflate count-3 lines past the tie boundary
    // in the dbscan and table1 streams).
    let sketch = SketchConfig {
        width_log2: 18,
        epoch_ops: 0,
        ..SketchConfig::default()
    };
    let obs = ObsSpec::recording(FLIGHT_CAPACITY, sketch, TOP_K);

    for exp in run_all_experiments_obs(DEFAULT_SEED, obs) {
        let name = exp.name().to_string();
        let out = exp.run();

        // Full-fidelity capture: nothing overwritten, decode → encode
        // is bit-exact.
        let cap = flight::decode(&out.capture).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(cap.overwritten, 0, "{name}: ring wrapped; grow capacity");
        assert_eq!(cap.recorded as usize, cap.events.len(), "{name}");
        assert!(!cap.events.is_empty(), "{name}: nothing recorded");
        assert_eq!(
            cap.encode(),
            out.capture,
            "{name}: capture round-trip must be bit-exact"
        );

        // Ground truth: exact per-line counts from the capture events.
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for e in &cap.events {
            *exact.entry(e.line).or_insert(0) += 1;
        }

        let hot = out
            .heatmap
            .get("hot")
            .unwrap_or_else(|| panic!("{name}: heatmap has no hot section"));
        assert_eq!(
            hot.get("observed").and_then(Json::as_u64),
            Some(cap.recorded),
            "{name}: sketch and recorder see the same stream"
        );
        assert_eq!(hot.get("decays").and_then(Json::as_u64), Some(0), "{name}");
        let entries = hot
            .get("entries")
            .and_then(Json::items)
            .unwrap_or_else(|| panic!("{name}: hot.entries missing"));
        let k_eff = TOP_K.min(exact.len());
        assert_eq!(entries.len(), k_eff, "{name}: top-K size");

        // The tie-robust agreement criterion: the exact k-th largest
        // count is the admission threshold, and a reported entry agrees
        // if its true count meets it (any line tied at the boundary is
        // a legitimate top-K member). Require >= 95% agreement.
        let mut counts: Vec<u64> = exact.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let threshold = counts[k_eff - 1];
        let mut agree = 0usize;
        for e in entries {
            let line = e.get("line").and_then(Json::as_u64).expect("line");
            let estimate = e.get("estimate").and_then(Json::as_u64).expect("estimate");
            let truth = exact.get(&line).copied().unwrap_or(0);
            assert!(
                estimate >= truth,
                "{name}: line {line:#x} estimate {estimate} under-counts {truth}"
            );
            if truth >= threshold {
                agree += 1;
            }
        }
        assert!(
            agree * 20 >= entries.len() * 19,
            "{name}: only {agree}/{} top-{k_eff} entries are true heavy hitters",
            entries.len()
        );

        // The bank heatmap saw the same DRAM traffic the capture did.
        let banks = out
            .heatmap
            .get("banks")
            .and_then(Json::items)
            .unwrap_or_else(|| panic!("{name}: heatmap has no banks"));
        let touched: u64 = banks
            .iter()
            .map(|b| {
                b.get("row_hits").and_then(Json::as_u64).unwrap_or(0)
                    + b.get("row_misses").and_then(Json::as_u64).unwrap_or(0)
            })
            .sum();
        assert!(touched > 0, "{name}: bank heat counters never moved");
    }
}

#[test]
fn recording_does_not_perturb_simulated_results() {
    // The observability acceptance bar that matters most: a machine
    // with the recorder and sketch attached reports *identical*
    // simulated cycles. Compare one shadow-heavy experiment both ways.
    let plain = run_all_experiments_obs(DEFAULT_SEED, ObsSpec::off());
    let recorded = run_all_experiments_obs(
        DEFAULT_SEED,
        ObsSpec::recording(1 << 16, SketchConfig::default(), 8),
    );
    for (p, r) in plain.iter().zip(&recorded).take(4) {
        assert_eq!(p.name(), r.name());
        let a = p.run().report;
        let b = r.run().report;
        assert_eq!(a.cycles, b.cycles, "{}", p.name());
        assert_eq!(a.mem.loads, b.mem.loads, "{}", p.name());
        assert_eq!(a.mem.load_cycles, b.mem.load_cycles, "{}", p.name());
    }
}
