//! Golden invariant for checkpoint/restore:
//! `run(N); snapshot; restore; run(M)` must be bit-identical to
//! `run(N + M)` — every cycle count, statistic, histogram, and emitted
//! report byte — for every machine configuration, including under active
//! fault schedules.

use std::sync::Arc;

use impulse_fault::{FaultConfig, Trigger};
use impulse_sim::{Machine, SystemConfig};
use impulse_types::snap::SnapError;
use impulse_types::VRange;

/// Asserts that two machines are observationally identical: same clock,
/// same instruction count, and bit-identical reports (CSV row, full JSON
/// document, and the complete metrics registry including histograms).
fn assert_machines_identical(a: &Machine, b: &Machine, context: &str) {
    assert_eq!(a.now(), b.now(), "{context}: clock diverged");
    assert_eq!(
        a.instructions(),
        b.instructions(),
        "{context}: instruction count diverged"
    );
    let ra = a.report("equiv");
    let rb = b.report("equiv");
    assert_eq!(ra.csv_row(), rb.csv_row(), "{context}: CSV row diverged");
    assert_eq!(
        format!("{:#}", ra.to_json()),
        format!("{:#}", rb.to_json()),
        "{context}: JSON report diverged"
    );
    assert_eq!(a.metrics(), b.metrics(), "{context}: metrics diverged");
}

/// A deterministic mixed workload: strided loads with reuse, stores, and
/// compute, spread over enough pages to exercise the TLB and both caches.
fn drive(m: &mut Machine, data: VRange, rounds: u64, salt: u64) {
    let len = data.len();
    for i in 0..rounds {
        let off = ((i * 2654435761 + salt) % (len / 8)) * 8;
        m.load(data.start().add(off));
        if i % 3 == 0 {
            m.store(data.start().add((off + 64) % len));
        }
        m.compute(2);
    }
}

/// Runs the golden invariant under `cfg`: builds two identical machines,
/// runs both through `setup`, drives N ops, snapshots one, restores it,
/// drives M more ops on the restored copy and the untouched original, and
/// demands bit-identical observable state.
fn check_equivalence(
    cfg: &SystemConfig,
    context: &str,
    setup: impl Fn(&mut Machine) -> VRange,
    n: u64,
    m_more: u64,
) {
    let mut original = Machine::new(cfg);
    let data = setup(&mut original);
    drive(&mut original, data, n, 7);

    let image = original.snapshot(cfg);
    let mut restored = Machine::restore(cfg, &image).expect("restore succeeds");
    assert_machines_identical(&original, &restored, &format!("{context} (at snapshot)"));

    drive(&mut original, data, m_more, 11);
    drive(&mut restored, data, m_more, 11);
    assert_machines_identical(&original, &restored, &format!("{context} (after resume)"));

    // Re-snapshotting the restored machine reproduces the original's
    // image byte-for-byte: the codec has no hidden iteration-order or
    // address-dependent state.
    let image2 = Machine::restore(cfg, &original.snapshot(cfg))
        .expect("second restore succeeds")
        .snapshot(cfg);
    assert_eq!(
        original.snapshot(cfg),
        image2,
        "{context}: snapshot-of-restore is not byte-identical"
    );
}

fn plain_setup(m: &mut Machine) -> VRange {
    m.alloc_region(256 * 1024, 8).expect("alloc")
}

#[test]
fn fresh_machine_round_trips() {
    let cfg = SystemConfig::paint_small();
    let m = Machine::new(&cfg);
    let image = m.snapshot(&cfg);
    let r = Machine::restore(&cfg, &image).expect("restore fresh machine");
    assert_machines_identical(&m, &r, "fresh machine");
}

#[test]
fn baseline_config_resumes_bit_exactly() {
    check_equivalence(
        &SystemConfig::paint_small(),
        "baseline",
        plain_setup,
        2000,
        1500,
    );
}

#[test]
fn prefetch_config_resumes_bit_exactly() {
    check_equivalence(
        &SystemConfig::paint_small().with_prefetch(true, true),
        "mc+l1 prefetch",
        plain_setup,
        2000,
        1500,
    );
}

#[test]
fn stream_buffers_and_mshr_resume_bit_exactly() {
    // Non-blocking loads keep misses in flight across the snapshot; the
    // stream-buffer FIFOs must survive too.
    check_equivalence(
        &SystemConfig::paint_small()
            .with_stream_buffers()
            .with_mshr(4),
        "stream buffers + mshr=4",
        plain_setup,
        2500,
        2000,
    );
}

#[test]
fn gather_remap_resumes_bit_exactly() {
    // Shadow descriptors, the controller page table, and the gather
    // buffers all carry state across the snapshot.
    let cfg = SystemConfig::paint_small().with_prefetch(true, false);
    check_equivalence(
        &cfg,
        "gather remap",
        |m| {
            let x = m.alloc_region(4096 * 8, 8).expect("alloc x");
            let colv = m.alloc_region(2048 * 4, 4).expect("alloc colv");
            let indices = Arc::new((0..2048u64).map(|i| (i * 13) % 4096).collect::<Vec<_>>());
            let g = m
                .sys_remap_gather(x, 8, indices, colv, 4)
                .expect("gather remap");
            g.alias
        },
        1200,
        900,
    );
}

#[test]
fn auto_promotion_and_process_switch_resume_bit_exactly() {
    // The kernel side: per-region TLB-miss counters, superpage promotion
    // state, and a second process's address space.
    let cfg = SystemConfig::paint_small();
    let mut original = Machine::new(&cfg);
    original.enable_auto_promotion(4);
    let data = plain_setup(&mut original);
    let other = original.sys_spawn();
    drive(&mut original, data, 1500, 3);

    let image = original.snapshot(&cfg);
    let mut restored = Machine::restore(&cfg, &image).expect("restore");
    // `enable_auto_promotion` is machine state and must survive the
    // image; do NOT re-enable it on the restored copy.
    assert_machines_identical(&original, &restored, "promotion (at snapshot)");

    for m in [&mut original, &mut restored] {
        m.sys_switch(other).expect("switch");
        let r2 = m.alloc_region(64 * 1024, 8).expect("alloc in child");
        drive(m, r2, 600, 5);
    }
    assert_machines_identical(&original, &restored, "promotion (after resume)");
}

#[test]
fn active_fault_schedule_resumes_bit_exactly() {
    // All three fault classes live: the per-site RNG streams, pending
    // bit flips, and timeout bookkeeping must resume mid-schedule.
    let faults = FaultConfig {
        seed: 0xFA_0715,
        dram_flip: Trigger::Permille(200),
        dram_double_permille: 100,
        bus_timeout: Trigger::Permille(150),
        pgtbl_corrupt: Trigger::EveryN { every: 7, phase: 2 },
        ..FaultConfig::none()
    };
    check_equivalence(
        &SystemConfig::paint_small().with_faults(faults),
        "active fault schedule",
        plain_setup,
        3000,
        2500,
    );
}

#[test]
fn fault_schedule_with_prefetch_resumes_bit_exactly() {
    let faults = FaultConfig {
        seed: 1999,
        dram_flip: Trigger::Permille(300),
        bus_timeout: Trigger::EveryN { every: 5, phase: 0 },
        ..FaultConfig::none()
    };
    check_equivalence(
        &SystemConfig::paint_small()
            .with_prefetch(true, true)
            .with_faults(faults),
        "faults + prefetch",
        plain_setup,
        2000,
        1500,
    );
}

#[test]
fn live_shares_and_revocation_resume_bit_exactly() {
    // Satellite of the capability work: snapshot mid-scenario with
    // shared and granted capabilities live (plus tombstones from an
    // earlier release), restore, and demand that post-restore
    // revocation behaves identically on both sides — receiver accesses
    // yield the same typed errors, same charges, same clock.
    let cfg = SystemConfig::paint_small();
    let mut original = Machine::new(&cfg);

    let data = plain_setup(&mut original);
    let live = original.sys_recolor(data, &[0, 1]).expect("recolor");
    let doomed_buf = original
        .alloc_region(4 * impulse_types::geom::PAGE_SIZE, 8)
        .expect("alloc");
    let doomed = original.sys_recolor(doomed_buf, &[2]).expect("recolor");
    let receiver = original.sys_spawn();
    let rx = original.sys_share(&live, receiver).expect("share");
    let dead_rx = original.sys_share(&doomed, receiver).expect("share");
    // Tombstones live in the snapshot: this release tears down dead_rx.
    original.sys_release(&doomed).expect("release");
    drive(&mut original, live.alias, 600, 7);

    let image = original.snapshot(&cfg);
    let mut restored = Machine::restore(&cfg, &image).expect("restore");
    assert_machines_identical(&original, &restored, "live shares (at snapshot)");

    for m in [&mut original, &mut restored] {
        // Receiver still reaches the live share, still faults on the
        // revoked one, then loses the live one to a post-restore revoke.
        m.sys_switch(receiver).expect("switch");
        m.try_load(rx.start()).expect("live share readable");
        assert!(matches!(
            m.try_load(dead_rx.start()),
            Err(impulse_os::OsError::RevokedCapability { .. })
        ));
        m.sys_switch(impulse_os::Pid::INIT).expect("switch back");
        let out = m.sys_revoke(&live).expect("revoke");
        assert!(out.caps_revoked >= 2);
        m.sys_switch(receiver).expect("switch");
        assert!(matches!(
            m.try_load(rx.start()),
            Err(impulse_os::OsError::RevokedCapability { .. })
        ));
    }
    assert_machines_identical(&original, &restored, "live shares (after revoke)");

    // Re-snapshotting the restored machine is still byte-identical.
    assert_eq!(
        original.snapshot(&cfg),
        restored.snapshot(&cfg),
        "post-revocation snapshots diverged"
    );
}

#[test]
fn caps_fault_schedule_resumes_bit_exactly() {
    // The capability-table corruption injector carries an RNG stream and
    // recovery statistics; both must survive a snapshot mid-schedule.
    let faults = FaultConfig {
        seed: 0xCA95,
        caps_corrupt: Trigger::EveryN { every: 3, phase: 1 },
        ..FaultConfig::none()
    };
    let cfg = SystemConfig::paint_small().with_faults(faults);
    let mut original = Machine::new(&cfg);
    let data = plain_setup(&mut original);
    // Capability churn drives the injector clock (validations).
    for _ in 0..6 {
        let g = original.sys_recolor(data, &[0]).expect("recolor");
        let _ = original.sys_release(&g);
    }
    drive(&mut original, data, 400, 3);

    let image = original.snapshot(&cfg);
    let mut restored = Machine::restore(&cfg, &image).expect("restore");
    assert_machines_identical(&original, &restored, "caps faults (at snapshot)");

    for m in [&mut original, &mut restored] {
        for _ in 0..6 {
            if let Ok(g) = m.sys_recolor(data, &[1]) {
                let _ = m.sys_release(&g);
            }
        }
    }
    assert_machines_identical(&original, &restored, "caps faults (after resume)");
    assert_eq!(
        original.kernel().caps().fault_stats(),
        restored.kernel().caps().fault_stats(),
        "injector recovery statistics diverged"
    );
}

#[test]
fn tier_cache_policy_resumes_bit_exactly() {
    // The DRAM-as-cache tier carries a tag array, fill buffer, and SCM
    // channel clocks across the snapshot; SCM bit errors and tag
    // corruption keep their RNG streams live mid-schedule.
    let faults = FaultConfig {
        seed: 0x71E4,
        scm_flip: Trigger::Permille(250),
        scm_double_permille: 100,
        tag_corrupt: Trigger::EveryN { every: 9, phase: 4 },
        ..FaultConfig::none()
    };
    check_equivalence(
        &SystemConfig::paint_small()
            .with_tier(impulse_types::TierPolicy::Cache)
            .with_faults(faults),
        "cache tier + scm faults",
        plain_setup,
        2500,
        2000,
    );
}

#[test]
fn tier_wear_out_resumes_bit_exactly() {
    // Restore mid-wear-out: per-line wear counters, retired lines, and
    // spare accounting are physical state and must survive the image, so
    // lines keep wearing out at exactly the same writes after resume.
    // A 64 KB DRAM cache thrashed by a 256 KB working set produces a
    // steady stream of dirty writebacks into single-write-limit SCM
    // lines: the 8 spares retire early in the run, then lines go dead,
    // so the restored machine resumes with dead lines, lost writebacks,
    // and NACK-degraded demand fetches all in flight.
    let mut cfg = SystemConfig::paint_small().with_tier(impulse_types::TierPolicy::Cache);
    cfg.dram.capacity = 64 * 1024;
    cfg.tier.scm.wear_limit = 1;
    cfg.tier.scm.spare_lines = 8;
    check_equivalence(&cfg, "cache tier wear-out", plain_setup, 3000, 2500);

    // The schedule above must actually retire and kill lines, otherwise
    // this test exercises nothing: drive one machine solo and check.
    let mut m = Machine::new(&cfg);
    let data = plain_setup(&mut m);
    drive(&mut m, data, 5500, 7);
    let reg = m.metrics();
    let retired = reg.counter_value("mc.scm.wear_retirements");
    let dead = reg.counter_value("mc.scm.dead_rejects");
    let faults = reg.counter_value("mem.tier_faults");
    assert!(
        retired.is_some_and(|v| v > 0),
        "wear schedule never retired a line (got {retired:?})"
    );
    assert!(
        dead.is_some_and(|v| v > 0) && faults.is_some_and(|v| v > 0),
        "no line ever went dead (dead_rejects {dead:?}, tier_faults {faults:?})"
    );
}

#[test]
fn tier_channel_kill_resumes_bit_exactly() {
    // Restore mid-channel-failure: the dead-bank mask, bypass counters,
    // and the kill plan's RNG stream resume so later kills pick the same
    // victims. Flat mode turns dead-channel accesses into typed,
    // NACK-degraded rejections, which must also count identically.
    let faults = FaultConfig {
        seed: 0xDEAD_C4,
        tier_fail: Trigger::EveryN {
            every: 900,
            phase: 300,
        },
        ..FaultConfig::none()
    };
    for policy in [impulse_types::TierPolicy::Flat, impulse_types::TierPolicy::Cache] {
        let cfg = SystemConfig::paint_small()
            .with_tier(policy)
            .with_faults(faults.clone());
        check_equivalence(
            &cfg,
            &format!("{} tier + channel kill", policy.name()),
            plain_setup,
            2500,
            2000,
        );

        let mut m = Machine::new(&cfg);
        let data = plain_setup(&mut m);
        drive(&mut m, data, 4500, 7);
        let kills = m.metrics().counter_value("mc.tier.fault.channel_kills");
        assert!(
            kills.is_some_and(|v| v > 0),
            "{}: kill schedule never fired (got {kills:?})",
            policy.name()
        );
    }
}

#[test]
fn restore_rejects_corruption_and_mismatch() {
    let cfg = SystemConfig::paint_small();
    let mut m = Machine::new(&cfg);
    let data = plain_setup(&mut m);
    drive(&mut m, data, 500, 1);
    let image = m.snapshot(&cfg);

    // A flipped payload byte is caught by the checksum.
    let mut corrupt = image.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    assert_eq!(
        Machine::restore(&cfg, &corrupt).unwrap_err(),
        SnapError::BadChecksum
    );

    // A truncated image never panics and never yields a machine.
    for cut in [0, 7, 14, 20, image.len() / 2, image.len() - 1] {
        assert!(
            Machine::restore(&cfg, &image[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }

    // Garbage up front is not an impulse snapshot.
    let mut bad_magic = image.clone();
    bad_magic[0] ^= 0xFF;
    assert_eq!(
        Machine::restore(&cfg, &bad_magic).unwrap_err(),
        SnapError::BadMagic
    );

    // A different configuration is rejected by fingerprint, before any
    // component tries to decode geometry it cannot hold.
    let other = SystemConfig::paint_small().with_prefetch(true, true);
    assert_eq!(
        Machine::restore(&other, &image).unwrap_err(),
        SnapError::ConfigMismatch
    );
}

#[test]
fn snapshot_is_deterministic() {
    let cfg = SystemConfig::paint_small();
    let mut m = Machine::new(&cfg);
    let data = plain_setup(&mut m);
    drive(&mut m, data, 800, 9);
    assert_eq!(
        m.snapshot(&cfg),
        m.snapshot(&cfg),
        "two snapshots of the same machine must be byte-identical"
    );
}



