//! Measurement reports in the shape of the paper's tables.
//!
//! Tables 1 and 2 report, per configuration: execution time (cycles), L1 /
//! L2 / memory hit ratios with *total loads* as the divisor, the average
//! load time, and the speedup over the "Conventional, no prefetch" row.

use core::fmt;

use impulse_cache::{CacheStats, TlbStats};
use impulse_core::{DescStats, McStats, PgTblStats, PrefetchStats};
use impulse_dram::DramStats;

use crate::bus::BusStats;
use crate::system::{MemStats, MemorySystem};

/// A complete measurement over one run epoch.
#[derive(Clone, Debug)]
pub struct Report {
    /// Configuration label.
    pub name: String,
    /// Cycles elapsed in the epoch.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles spent inside OS traps, downloads, and flushes.
    pub syscall_cycles: u64,
    /// Demand access counters.
    pub mem: MemStats,
    /// L1 cache internals.
    pub l1: CacheStats,
    /// L2 cache internals.
    pub l2: CacheStats,
    /// TLB internals.
    pub tlb: TlbStats,
    /// System bus counters.
    pub bus: BusStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Controller front-end counters.
    pub mc: McStats,
    /// Controller prefetch SRAM counters.
    pub pf: PrefetchStats,
    /// Aggregated shadow descriptor counters.
    pub desc: DescStats,
    /// Controller page table counters.
    pub pgtbl: PgTblStats,
}

impl Report {
    /// Gathers a report from the memory system.
    pub fn collect(
        name: String,
        cycles: u64,
        instructions: u64,
        syscall_cycles: u64,
        ms: &MemorySystem,
    ) -> Self {
        Self {
            name,
            cycles,
            instructions,
            syscall_cycles,
            mem: ms.stats(),
            l1: ms.l1().stats(),
            l2: ms.l2().stats(),
            tlb: ms.tlb().stats(),
            bus: ms.bus().stats(),
            dram: ms.mc().dram().stats(),
            mc: ms.mc().stats(),
            pf: ms.mc().prefetch_stats(),
            desc: ms.mc().desc_stats(),
            pgtbl: ms.mc().pgtbl_stats(),
        }
    }

    /// Speedup of this configuration relative to `baseline` (the paper's
    /// convention: `baseline.time / self.time`).
    pub fn speedup_over(&self, baseline: &Report) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// One row in the paper's table format:
    /// time, L1/L2/mem hit ratios, average load time, speedup.
    pub fn paper_row(&self, baseline: &Report) -> String {
        format!(
            "{:<28} {:>12} {:>7.1}% {:>7.1}% {:>7.1}% {:>9.2} {:>8.2}",
            self.name,
            self.cycles,
            100.0 * self.mem.l1_ratio(),
            100.0 * self.mem.l2_ratio(),
            100.0 * self.mem.mem_ratio(),
            self.mem.avg_load_time(),
            self.speedup_over(baseline),
        )
    }

    /// Header matching [`Report::paper_row`].
    pub fn paper_header() -> String {
        format!(
            "{:<28} {:>12} {:>8} {:>8} {:>8} {:>9} {:>8}",
            "configuration", "cycles", "L1 hit", "L2 hit", "mem hit", "avg load", "speedup"
        )
    }

    /// CSV header matching [`Report::csv_row`], for spreadsheet/plotting
    /// pipelines.
    pub fn csv_header() -> &'static str {
        "name,cycles,instructions,loads,stores,l1_ratio,l2_ratio,mem_ratio,\
         avg_load_time,tlb_penalties,bus_bytes,dram_bytes,dram_row_hit_ratio,\
         mc_gathers,mc_desc_buffer_hits,mc_pf_hits,syscall_cycles"
    }

    /// One CSV record of the headline metrics.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.4},{},{},{},{:.6},{},{},{},{}",
            self.name,
            self.cycles,
            self.instructions,
            self.mem.loads,
            self.mem.stores,
            self.mem.l1_ratio(),
            self.mem.l2_ratio(),
            self.mem.mem_ratio(),
            self.mem.avg_load_time(),
            self.mem.tlb_penalties,
            self.bus.bytes,
            self.dram.bytes,
            self.dram.row_hit_ratio(),
            self.desc.gathers,
            self.desc.buffer_hits,
            self.pf.hits,
            self.syscall_cycles,
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.name)?;
        writeln!(
            f,
            "  cycles {}  instructions {}  (syscall cycles {})",
            self.cycles, self.instructions, self.syscall_cycles
        )?;
        writeln!(
            f,
            "  loads {}  L1 {:.1}%  L2 {:.1}%  mem {:.1}%  avg load {:.2} cyc",
            self.mem.loads,
            100.0 * self.mem.l1_ratio(),
            100.0 * self.mem.l2_ratio(),
            100.0 * self.mem.mem_ratio(),
            self.mem.avg_load_time()
        )?;
        writeln!(
            f,
            "  bus {} B  dram {} B (row hits {:.0}%)  tlb penalties {}",
            self.bus.bytes,
            self.dram.bytes,
            100.0 * self.dram.row_hit_ratio(),
            self.mem.tlb_penalties
        )?;
        write!(
            f,
            "  mc: {} reads / {} shadow reads, {} gathers, pf hits {}, desc buffer hits {}",
            self.mc.line_reads,
            self.mc.shadow_line_reads,
            self.desc.gathers,
            self.pf.hits,
            self.desc.buffer_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::machine::Machine;

    fn sample() -> Report {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let r = m.alloc_region(4096, 8).unwrap();
        for i in 0..64 {
            m.load(r.start().add(i * 8));
        }
        m.report("sample")
    }

    #[test]
    fn speedup_is_relative_time() {
        let a = sample();
        let mut b = a.clone();
        b.cycles = a.cycles * 2;
        assert!((b.speedup_over(&a) - 0.5).abs() < 1e-9);
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-9);
        assert!((a.speedup_over(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_and_row_are_nonempty() {
        let r = sample();
        assert!(!format!("{r}").is_empty());
        let row = r.paper_row(&r);
        assert!(row.contains("sample"));
        assert!(!Report::paper_header().is_empty());
    }

    #[test]
    fn zero_cycles_speedup_is_zero() {
        let mut r = sample();
        r.cycles = 0;
        let base = sample();
        assert_eq!(r.speedup_over(&base), 0.0);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = sample();
        let header_cols = Report::csv_header().split(',').count();
        let row_cols = r.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(r.csv_row().starts_with("sample,"));
    }
}
