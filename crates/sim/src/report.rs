//! Measurement reports in the shape of the paper's tables.
//!
//! Tables 1 and 2 report, per configuration: execution time (cycles), L1 /
//! L2 / memory hit ratios with *total loads* as the divisor, the average
//! load time, and the speedup over the "Conventional, no prefetch" row.

use core::fmt;

use impulse_cache::{CacheStats, TlbStats};
use impulse_core::{DescStats, McStats, PgTblStats, PrefetchStats};
use impulse_dram::DramStats;
use impulse_obs::{Attribution, Histogram, Json, MetricValue, MetricsRegistry};

use crate::bus::BusStats;
use crate::system::{MemStats, MemorySystem};

/// A complete measurement over one run epoch.
#[derive(Clone, Debug)]
pub struct Report {
    /// Configuration label.
    pub name: String,
    /// Cycles elapsed in the epoch.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles spent inside OS traps, downloads, and flushes.
    pub syscall_cycles: u64,
    /// Demand access counters.
    pub mem: MemStats,
    /// L1 cache internals.
    pub l1: CacheStats,
    /// L2 cache internals.
    pub l2: CacheStats,
    /// TLB internals.
    pub tlb: TlbStats,
    /// System bus counters.
    pub bus: BusStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Controller front-end counters.
    pub mc: McStats,
    /// Controller prefetch SRAM counters.
    pub pf: PrefetchStats,
    /// Aggregated shadow descriptor counters.
    pub desc: DescStats,
    /// Controller page table counters.
    pub pgtbl: PgTblStats,
    /// Where every demand-access cycle went, by pipeline stage. The stage
    /// totals sum to `mem.load_cycles + mem.store_cycles` exactly.
    pub attr: Attribution,
    /// Every metric in the hierarchy (counters, gauges, and per-level
    /// latency histograms) under component-prefixed names.
    pub metrics: MetricsRegistry,
}

impl Report {
    /// Gathers a report from the memory system.
    pub fn collect(
        name: String,
        cycles: u64,
        instructions: u64,
        syscall_cycles: u64,
        ms: &MemorySystem,
    ) -> Self {
        Self {
            name,
            cycles,
            instructions,
            syscall_cycles,
            mem: ms.stats(),
            l1: ms.l1().stats(),
            l2: ms.l2().stats(),
            tlb: ms.tlb().stats(),
            bus: ms.bus().stats(),
            dram: ms.mc().dram().stats(),
            mc: ms.mc().stats(),
            pf: ms.mc().prefetch_stats(),
            desc: ms.mc().desc_stats(),
            pgtbl: ms.mc().pgtbl_stats(),
            attr: ms.attribution().clone(),
            metrics: ms.observe_all(),
        }
    }

    /// Serialises the full report as a JSON value (schema
    /// `impulse-report-v1`): headline numbers, the demand-cycle
    /// attribution table, every per-level latency histogram with
    /// count/sum/min/max/mean and p50/p90/p99, and the flat
    /// counter/gauge registry.
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        root.set("schema", Json::Str("impulse-report-v1".into()));
        root.set("name", Json::Str(self.name.clone()));
        root.set("cycles", Json::UInt(self.cycles));
        root.set("instructions", Json::UInt(self.instructions));
        root.set("syscall_cycles", Json::UInt(self.syscall_cycles));

        let mut mem = Json::obj();
        mem.set("loads", Json::UInt(self.mem.loads));
        mem.set("stores", Json::UInt(self.mem.stores));
        mem.set("load_cycles", Json::UInt(self.mem.load_cycles));
        mem.set("store_cycles", Json::UInt(self.mem.store_cycles));
        mem.set("l1_ratio", Json::Float(self.mem.l1_ratio()));
        mem.set("l2_ratio", Json::Float(self.mem.l2_ratio()));
        mem.set("mem_ratio", Json::Float(self.mem.mem_ratio()));
        mem.set("avg_load_time", Json::Float(self.mem.avg_load_time()));
        mem.set("tlb_penalties", Json::UInt(self.mem.tlb_penalties));
        mem.set("remap_faults", Json::UInt(self.mem.remap_faults));
        root.set("mem", mem);

        let mut attr = Json::obj();
        for (stage, cycles) in self.attr.entries() {
            attr.set(stage.name(), Json::UInt(cycles));
        }
        attr.set("total", Json::UInt(self.attr.total()));
        attr.set(
            "demand_cycles",
            Json::UInt(self.mem.load_cycles + self.mem.store_cycles),
        );
        root.set("attribution", attr);

        let mut hists = Json::obj();
        let mut counters = Json::obj();
        let mut gauges = Json::obj();
        for (name, v) in self.metrics.iter() {
            match v {
                MetricValue::Histogram(h) => {
                    hists.set(name, histogram_json(h));
                }
                MetricValue::Counter(c) => {
                    counters.set(name, Json::UInt(*c));
                }
                MetricValue::Gauge(g) => {
                    gauges.set(name, Json::Float(*g));
                }
            }
        }
        root.set("histograms", hists);
        root.set("counters", counters);
        root.set("gauges", gauges);
        root
    }

    /// Speedup of this configuration relative to `baseline` (the paper's
    /// convention: `baseline.time / self.time`).
    pub fn speedup_over(&self, baseline: &Report) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// One row in the paper's table format:
    /// time, L1/L2/mem hit ratios, average load time, speedup.
    pub fn paper_row(&self, baseline: &Report) -> String {
        format!(
            "{:<28} {:>12} {:>7.1}% {:>7.1}% {:>7.1}% {:>9.2} {:>8.2}",
            self.name,
            self.cycles,
            100.0 * self.mem.l1_ratio(),
            100.0 * self.mem.l2_ratio(),
            100.0 * self.mem.mem_ratio(),
            self.mem.avg_load_time(),
            self.speedup_over(baseline),
        )
    }

    /// Header matching [`Report::paper_row`].
    pub fn paper_header() -> String {
        format!(
            "{:<28} {:>12} {:>8} {:>8} {:>8} {:>9} {:>8}",
            "configuration", "cycles", "L1 hit", "L2 hit", "mem hit", "avg load", "speedup"
        )
    }

    /// CSV header matching [`Report::csv_row`], for spreadsheet/plotting
    /// pipelines.
    pub fn csv_header() -> &'static str {
        "name,cycles,instructions,loads,stores,l1_ratio,l2_ratio,mem_ratio,\
         avg_load_time,tlb_penalties,bus_bytes,dram_bytes,dram_row_hit_ratio,\
         mc_gathers,mc_desc_buffer_hits,mc_pf_hits,syscall_cycles"
    }

    /// One CSV record of the headline metrics.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.4},{},{},{},{:.6},{},{},{},{}",
            self.name,
            self.cycles,
            self.instructions,
            self.mem.loads,
            self.mem.stores,
            self.mem.l1_ratio(),
            self.mem.l2_ratio(),
            self.mem.mem_ratio(),
            self.mem.avg_load_time(),
            self.mem.tlb_penalties,
            self.bus.bytes,
            self.dram.bytes,
            self.dram.row_hit_ratio(),
            self.desc.gathers,
            self.desc.buffer_hits,
            self.pf.hits,
            self.syscall_cycles,
        )
    }
}

fn histogram_json(h: &Histogram) -> Json {
    let mut o = Json::obj();
    o.set("count", Json::UInt(h.count()));
    o.set("sum", Json::UInt(h.sum()));
    o.set("min", Json::UInt(h.min()));
    o.set("max", Json::UInt(h.max()));
    o.set("mean", Json::Float(h.mean()));
    o.set("p50", Json::UInt(h.p50()));
    o.set("p90", Json::UInt(h.p90()));
    o.set("p99", Json::UInt(h.p99()));
    o
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.name)?;
        writeln!(
            f,
            "  cycles {}  instructions {}  (syscall cycles {})",
            self.cycles, self.instructions, self.syscall_cycles
        )?;
        writeln!(
            f,
            "  loads {}  L1 {:.1}%  L2 {:.1}%  mem {:.1}%  avg load {:.2} cyc",
            self.mem.loads,
            100.0 * self.mem.l1_ratio(),
            100.0 * self.mem.l2_ratio(),
            100.0 * self.mem.mem_ratio(),
            self.mem.avg_load_time()
        )?;
        writeln!(
            f,
            "  bus {} B  dram {} B (row hits {:.0}%)  tlb penalties {}",
            self.bus.bytes,
            self.dram.bytes,
            100.0 * self.dram.row_hit_ratio(),
            self.mem.tlb_penalties
        )?;
        write!(
            f,
            "  mc: {} reads / {} shadow reads, {} gathers, pf hits {}, desc buffer hits {}",
            self.mc.line_reads,
            self.mc.shadow_line_reads,
            self.desc.gathers,
            self.pf.hits,
            self.desc.buffer_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::machine::Machine;

    fn sample() -> Report {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let r = m.alloc_region(4096, 8).unwrap();
        for i in 0..64 {
            m.load(r.start().add(i * 8));
        }
        m.report("sample")
    }

    #[test]
    fn speedup_is_relative_time() {
        let a = sample();
        let mut b = a.clone();
        b.cycles = a.cycles * 2;
        assert!((b.speedup_over(&a) - 0.5).abs() < 1e-9);
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-9);
        assert!((a.speedup_over(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_and_row_are_nonempty() {
        let r = sample();
        assert!(!format!("{r}").is_empty());
        let row = r.paper_row(&r);
        assert!(row.contains("sample"));
        assert!(!Report::paper_header().is_empty());
    }

    #[test]
    fn zero_cycles_speedup_is_zero() {
        let mut r = sample();
        r.cycles = 0;
        let base = sample();
        assert_eq!(r.speedup_over(&base), 0.0);
    }

    #[test]
    fn empty_epoch_report_is_all_zeros_and_serialisable() {
        // A report taken immediately after reset: every denominator is
        // zero, and nothing may divide by it or emit non-finite JSON.
        let mut m = Machine::new(&SystemConfig::paint_small());
        let r = m.alloc_region(4096, 8).unwrap();
        m.load(r.start());
        m.reset_stats();
        let rep = m.report("empty");
        assert_eq!(rep.cycles, 0);
        assert_eq!(rep.mem.l1_ratio(), 0.0);
        assert_eq!(rep.mem.l2_ratio(), 0.0);
        assert_eq!(rep.mem.mem_ratio(), 0.0);
        assert_eq!(rep.mem.avg_load_time(), 0.0);
        assert_eq!(rep.speedup_over(&rep), 0.0);
        assert_eq!(rep.attr.total(), 0);
        assert_eq!(rep.attr.share(impulse_obs::Stage::Dram), 0.0);
        let text = format!("{}", rep.to_json());
        assert!(!text.contains("NaN") && !text.contains("inf"));
        let parsed = Json::parse(&text).expect("empty report is valid JSON");
        assert_eq!(parsed.get("cycles").and_then(Json::as_u64), Some(0));
        let h = parsed
            .get("histograms")
            .and_then(|h| h.get("mem.lat_load"))
            .expect("histograms present even when empty");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn json_round_trips_component_stats() {
        let rep = sample();
        let text = format!("{:#}", rep.to_json());
        let parsed = Json::parse(&text).expect("report JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("impulse-report-v1")
        );
        assert_eq!(
            parsed.get("cycles").and_then(Json::as_u64),
            Some(rep.cycles)
        );
        // Counters survive exactly and match the component-local stats
        // the report was collected from.
        let counters = parsed.get("counters").expect("counters object");
        assert_eq!(
            counters.get("l1.cache.loads").and_then(Json::as_u64),
            Some(rep.l1.loads)
        );
        assert_eq!(
            counters.get("dram.reads").and_then(Json::as_u64),
            Some(rep.dram.reads)
        );
        assert_eq!(
            counters.get("mem.loads").and_then(Json::as_u64),
            Some(rep.mem.loads)
        );
        // The attribution table sums to the epoch's demand cycles.
        let attr = parsed.get("attribution").expect("attribution object");
        assert_eq!(
            attr.get("total").and_then(Json::as_u64),
            Some(rep.mem.load_cycles + rep.mem.store_cycles)
        );
        assert_eq!(
            attr.get("total").and_then(Json::as_u64),
            attr.get("demand_cycles").and_then(Json::as_u64)
        );
        // Per-level histograms carry the quantile fields.
        let hl = parsed
            .get("histograms")
            .and_then(|h| h.get("mem.lat_load"))
            .expect("load latency histogram");
        assert_eq!(hl.get("count").and_then(Json::as_u64), Some(rep.mem.loads));
        for q in ["p50", "p90", "p99"] {
            assert!(hl.get(q).and_then(Json::as_u64).is_some(), "missing {q}");
        }
    }

    #[test]
    fn collect_matches_component_stats() {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let r = m.alloc_region(64 * 1024, 8).unwrap();
        for i in 0..256 {
            m.load(r.start().add(i * 40));
        }
        let rep = m.report("roundtrip");
        let ms = m.memory();
        assert_eq!(rep.mem, ms.stats());
        assert_eq!(rep.l1, ms.l1().stats());
        assert_eq!(rep.l2, ms.l2().stats());
        assert_eq!(rep.tlb, ms.tlb().stats());
        assert_eq!(rep.bus, ms.bus().stats());
        assert_eq!(rep.dram, ms.mc().dram().stats());
        assert_eq!(rep.mc, ms.mc().stats());
        assert_eq!(rep.pgtbl, ms.mc().pgtbl_stats());
        assert_eq!(&rep.attr, ms.attribution());
        assert_eq!(rep.metrics, ms.observe_all());
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = sample();
        let header_cols = Report::csv_header().split(',').count();
        let row_cols = r.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(r.csv_row().starts_with("sample,"));
    }
}
