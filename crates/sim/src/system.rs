//! The memory system: TLB + L1 + L2 + bus + Impulse controller.
//!
//! This is the timing heart of the simulator. A load walks the Paint
//! hierarchy: 1-cycle L1 hit; 7-cycle L2 hit; otherwise a bus round trip
//! to the memory controller (≈40 cycles to DRAM, less on a controller
//! prefetch hit, more for a multi-access gather). Writebacks, write
//! allocations, and prefetch fills are *posted*: they occupy the bus and
//! DRAM (creating real contention) but do not stall the CPU.

use impulse_cache::{Cache, FlushOutcome, Outcome, StreamBuffers, StreamOutcome, Tlb};
use impulse_core::{McError, MemController, TierEngine};
use impulse_dram::Dram;
use impulse_obs::{Attribution, Histogram, MetricsRegistry, Observe, Stage};
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{AccessKind, Cycle, PAddr, TierPolicy, VAddr};

use crate::bus::Bus;
use crate::config::SystemConfig;

/// Snapshot section tag for [`MemorySystem`] (`"MSYS"`).
const TAG_MSYS: u32 = 0x4D53_5953;

/// Demand-access counters, kept separately from per-cache statistics so
/// the paper's load-based ratios are unambiguous.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand loads issued by the CPU.
    pub loads: u64,
    /// Loads that hit the L1.
    pub l1_load_hits: u64,
    /// Loads that missed L1 and hit the L2.
    pub l2_load_hits: u64,
    /// Loads served by the memory controller (DRAM or controller SRAM).
    pub mem_loads: u64,
    /// Total cycles spent in loads (including TLB penalties).
    pub load_cycles: u64,
    /// Demand stores issued by the CPU.
    pub stores: u64,
    /// Stores that hit the L1.
    pub store_l1_hits: u64,
    /// Stores that required a memory-level allocation.
    pub store_mem: u64,
    /// Total cycles spent in stores.
    pub store_cycles: u64,
    /// Next-line prefetches issued into the L1.
    pub l1_prefetches: u64,
    /// Loads served by the stream buffers (when configured).
    pub stream_loads: u64,
    /// Lines written back to memory (L2 victims, flushes).
    pub mem_writebacks: u64,
    /// TLB miss penalties taken.
    pub tlb_penalties: u64,
    /// Demand loads whose remapped (shadow) access was rejected by the
    /// controller and fell back to a NACK-degraded non-remapped access.
    pub remap_faults: u64,
    /// Demand loads rejected by a degraded hybrid tier (dead DRAM
    /// channel in flat mode, worn-out SCM line) and NACK-degraded. The
    /// rejection is typed at the controller and counted here — never
    /// silent.
    pub tier_faults: u64,
}

impl MemStats {
    /// L1 load hit ratio (divisor: total loads, as in the paper).
    pub fn l1_ratio(&self) -> f64 {
        ratio(self.l1_load_hits, self.loads)
    }

    /// L2 load hit ratio (divisor: total loads, as in the paper).
    pub fn l2_ratio(&self) -> f64 {
        ratio(self.l2_load_hits, self.loads)
    }

    /// Memory load ratio (divisor: total loads, as in the paper).
    pub fn mem_ratio(&self) -> f64 {
        ratio(self.mem_loads, self.loads)
    }

    /// Average cycles per load.
    pub fn avg_load_time(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_cycles as f64 / self.loads as f64
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Deferred statistics for replay-evaluated L1 hits, flushed in bulk via
/// [`MemorySystem::apply_replay_pending`]. Every field is an
/// order-insensitive sum, so deferral cannot change any final counter.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ReplayPending {
    /// Demand loads that hit the L1 on the fast path.
    pub load_hits: u64,
    /// Demand stores that hit the L1 on the fast path.
    pub store_hits: u64,
    /// Fast-path hits that consumed a prefetched line.
    pub prefetch_useful: u64,
    /// Fast-path accesses whose TLB hit was served from the replay memo
    /// (the rest performed a real `Tlb::lookup`).
    pub tlb_memo_hits: u64,
}

/// The assembled memory system.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
    bus: Bus,
    mc: MemController,
    streams: Option<StreamBuffers>,
    t_stream_hit: Cycle,
    t_l1_hit: Cycle,
    t_l2_hit: Cycle,
    t_tlb_miss: Cycle,
    l1_prefetch: bool,
    l1_line: u64,
    l2_line: u64,
    stats: MemStats,
    /// Where every demand-access cycle went. Background traffic
    /// (writebacks, prefetch fills, stream fetches) is deliberately not
    /// attributed — it never stalls the CPU, so `attr.total()` equals
    /// `load_cycles + store_cycles` exactly.
    attr: Attribution,
    lat_l1_hit: Histogram,
    lat_l2_hit: Histogram,
    lat_stream_hit: Histogram,
    lat_mem: Histogram,
    lat_tlb_walk: Histogram,
    lat_load: Histogram,
    lat_store: Histogram,
}

impl MemorySystem {
    /// Assembles the hierarchy from a configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        let dram = Dram::new(cfg.dram.clone());
        let mut mc = MemController::new(dram, cfg.mc.clone());
        if cfg.tier.policy != TierPolicy::None {
            // Attach before set_faults so the tier's fault planes (SCM
            // bit errors, tag corruption, tier-fail) get wired too.
            mc.attach_tier(TierEngine::new(
                cfg.tier.clone(),
                &cfg.dram,
                cfg.mc.line_bytes,
            ));
        }
        let mut bus = Bus::new(cfg.bus);
        if !cfg.faults.is_none() {
            // Distribute per-site injectors: DRAM flips + ECC and pgtbl
            // corruption live behind the controller, timeouts at the bus.
            mc.set_faults(&cfg.faults);
            if let Some(inj) = cfg.faults.timeout_injector() {
                bus.set_fault_injector(inj);
            }
        }
        Self {
            l1: Cache::new(cfg.l1.clone()),
            l2: Cache::new(cfg.l2.clone()),
            tlb: Tlb::new(cfg.tlb),
            bus,
            mc,
            streams: cfg.stream.map(StreamBuffers::new),
            t_stream_hit: 2,
            t_l1_hit: cfg.t_l1_hit,
            t_l2_hit: cfg.t_l2_hit,
            t_tlb_miss: cfg.t_tlb_miss,
            l1_prefetch: cfg.l1_prefetch,
            l1_line: cfg.l1.line,
            l2_line: cfg.l2.line,
            stats: MemStats::default(),
            attr: Attribution::new(),
            lat_l1_hit: Histogram::new(),
            lat_l2_hit: Histogram::new(),
            lat_stream_hit: Histogram::new(),
            lat_mem: Histogram::new(),
            lat_tlb_walk: Histogram::new(),
            lat_load: Histogram::new(),
            lat_store: Histogram::new(),
        }
    }

    /// Demand-access statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// The L1 cache (stats & inspection).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache (stats & inspection).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The TLB.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// The system bus.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The memory controller.
    pub fn mc(&self) -> &MemController {
        &self.mc
    }

    /// Mutable controller access — the OS uses this to download
    /// descriptors and page mappings.
    pub fn mc_mut(&mut self) -> &mut MemController {
        &mut self.mc
    }

    /// Mutable L1 access for the replay evaluator's batched hit path.
    #[inline]
    pub(crate) fn l1_mut(&mut self) -> &mut Cache {
        &mut self.l1
    }

    /// Mutable TLB access for the replay evaluator.
    #[inline]
    pub(crate) fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Stream-buffer store invalidation, exactly as the demand store
    /// path performs it (no-op without stream buffers; idempotent).
    #[inline]
    pub(crate) fn streams_invalidate(&mut self, p: PAddr) {
        if let Some(s) = &mut self.streams {
            s.invalidate(p);
        }
    }

    /// Folds a batch of replay-evaluated L1 hits into the statistics —
    /// precisely the per-access effects of [`MemorySystem::load`] /
    /// [`MemorySystem::store`] on the TLB-hit + L1-hit path, which are
    /// all order-insensitive sums (counters, attribution, histogram
    /// buckets), applied in bulk.
    pub(crate) fn apply_replay_pending(&mut self, p: &ReplayPending) {
        let hits = p.load_hits + p.store_hits;
        if hits == 0 {
            return;
        }
        self.stats.loads += p.load_hits;
        self.stats.l1_load_hits += p.load_hits;
        self.stats.load_cycles += p.load_hits * self.t_l1_hit;
        self.stats.stores += p.store_hits;
        self.stats.store_l1_hits += p.store_hits;
        self.stats.store_cycles += p.store_hits * self.t_l1_hit;
        self.attr.charge(Stage::L1, hits * self.t_l1_hit);
        self.lat_l1_hit.record_n(self.t_l1_hit, hits);
        self.lat_load.record_n(self.t_l1_hit, p.load_hits);
        self.lat_store.record_n(self.t_l1_hit, p.store_hits);
        let cs = self.l1.stats_mut();
        cs.loads += p.load_hits;
        cs.load_hits += p.load_hits;
        cs.stores += p.store_hits;
        cs.store_hits += p.store_hits;
        cs.prefetch_useful += p.prefetch_useful;
        self.tlb.add_hits_bulk(p.tlb_memo_hits);
    }

    /// Resets all statistics (cache/TLB/DRAM contents are preserved, so a
    /// warmed-up machine can be measured from a clean counter baseline).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.tlb.reset_stats();
        self.bus.reset_stats();
        self.mc.dram_mut().reset_stats();
        self.attr.reset();
        self.lat_l1_hit = Histogram::new();
        self.lat_l2_hit = Histogram::new();
        self.lat_stream_hit = Histogram::new();
        self.lat_mem = Histogram::new();
        self.lat_tlb_walk = Histogram::new();
        self.lat_load = Histogram::new();
        self.lat_store = Histogram::new();
    }

    /// Per-stage breakdown of where demand-access cycles went this epoch.
    pub fn attribution(&self) -> &Attribution {
        &self.attr
    }

    /// Latency distribution of demand loads (end to end, incl. TLB).
    pub fn load_latency(&self) -> &Histogram {
        &self.lat_load
    }

    /// Latency distribution of demand stores (end to end, incl. TLB).
    pub fn store_latency(&self) -> &Histogram {
        &self.lat_store
    }

    /// Latency distribution of loads that went to the memory controller
    /// (from L2-miss detection to critical word on the bus).
    pub fn mem_latency(&self) -> &Histogram {
        &self.lat_mem
    }

    /// Performs a demand load of the word at `(v, p)`; `span` is the TLB
    /// reach of the page (from the OS, to support superpages). Returns the
    /// completion cycle.
    pub fn load(&mut self, v: VAddr, p: PAddr, span: (u64, u64), now: Cycle) -> Cycle {
        self.stats.loads += 1;
        let t = self.tlb_check(v, span, now);
        let done = match self.l1.access(v, p, AccessKind::Load) {
            Outcome::Hit => {
                self.stats.l1_load_hits += 1;
                self.attr.charge(Stage::L1, self.t_l1_hit);
                self.lat_l1_hit.record(self.t_l1_hit);
                t + self.t_l1_hit
            }
            Outcome::Miss { writeback } => {
                let d = if self.streams.is_some() {
                    self.miss_via_streams(v, p, t)
                } else {
                    self.fill_from_l2(v, p, t)
                };
                if let Some(wb) = writeback {
                    self.writeback_to_l2(wb, d);
                }
                if self.l1_prefetch {
                    self.prefetch_next_l1_line(v, p, d);
                }
                d
            }
            Outcome::Bypass => unreachable!("loads never bypass"),
        };
        self.stats.load_cycles += done - now;
        self.lat_load.record(done - now);
        done
    }

    /// L1 miss with stream buffers configured: a head match serves the
    /// line from the buffer; otherwise the miss takes the normal path and
    /// allocates a new next-line stream.
    fn miss_via_streams(&mut self, v: VAddr, p: PAddr, t: Cycle) -> Cycle {
        let streams = self.streams.as_mut().expect("streams configured");
        match streams.lookup(p, t) {
            StreamOutcome::Hit { ready, fetch } => {
                self.stats.stream_loads += 1;
                let done = ready.max(t) + self.t_stream_hit;
                self.attr.charge(Stage::Stream, done - t);
                self.lat_stream_hit.record(done - t);
                // The demand L1 access already allocated the line (the
                // cache model fills on miss), so the rest of the line
                // hits the L1 — Jouppi's transfer-on-hit for free.
                if let Some(line) = fetch {
                    self.stream_fetch(line, done);
                }
                done
            }
            StreamOutcome::Miss { fetches } => {
                let d = self.fill_from_l2(v, p, t);
                for line in fetches.into_iter().flatten() {
                    self.stream_fetch(line, d);
                }
                d
            }
        }
    }

    /// Background fetch of one L1-line-sized block into a stream buffer:
    /// from the L2 if present, else across the bus from the controller
    /// (stream buffers are CPU-side — their traffic pays full bus cost,
    /// which is exactly the contrast with Impulse's remapping).
    fn stream_fetch(&mut self, line: PAddr, start: Cycle) {
        let v = VAddr::new(line.raw()); // L2 is physically indexed
        let ready = if self.l2.probe(v, line) {
            start + self.t_l2_hit
        } else {
            let data_ready = self.mc.read_line(line, start + self.bus.request_latency());
            self.bus.background_transfer(self.l1_line, data_ready)
        };
        if let Some(s) = self.streams.as_mut() {
            s.fill(line, ready);
        }
    }

    /// Programs a McKee-style stream with an explicit physical stride;
    /// returns immediately (fetches run in the background).
    pub fn program_stream(&mut self, base: PAddr, stride: i64, now: Cycle) {
        if self.streams.is_none() {
            return;
        }
        let fetches = self
            .streams
            .as_mut()
            .expect("streams configured")
            .program(base, stride);
        for line in fetches.into_iter().flatten() {
            self.stream_fetch(line, now);
        }
    }

    /// Stream buffer statistics, if configured.
    pub fn stream_stats(&self) -> Option<impulse_cache::StreamStats> {
        self.streams.as_ref().map(|s| s.stats())
    }

    /// Performs a demand store; returns the completion cycle (stores
    /// retire through the write path, so allocations happen in the
    /// background).
    pub fn store(&mut self, v: VAddr, p: PAddr, span: (u64, u64), now: Cycle) -> Cycle {
        self.stats.stores += 1;
        let t = self.tlb_check(v, span, now);
        if let Some(s) = self.streams.as_mut() {
            s.invalidate(p);
        }
        let done = match self.l1.access(v, p, AccessKind::Store) {
            Outcome::Hit => {
                self.stats.store_l1_hits += 1;
                self.attr.charge(Stage::L1, self.t_l1_hit);
                self.lat_l1_hit.record(self.t_l1_hit);
                t + self.t_l1_hit
            }
            // Write-around L1: the store proceeds to the L2.
            Outcome::Bypass => self.store_to_l2(v, p, t),
            // A write-allocate L1 (non-Paint configuration): fill, dirty.
            Outcome::Miss { writeback } => {
                let d = self.fill_from_l2(v, p, t);
                if let Some(wb) = writeback {
                    self.writeback_to_l2(wb, d);
                }
                d
            }
        };
        self.stats.store_cycles += done - now;
        self.lat_store.record(done - now);
        done
    }

    fn tlb_check(&mut self, v: VAddr, span: (u64, u64), now: Cycle) -> Cycle {
        if self.tlb.lookup(v.page_number()) {
            now
        } else {
            self.tlb.insert(span.0, span.1);
            self.stats.tlb_penalties += 1;
            self.attr.charge(Stage::Mmu, self.t_tlb_miss);
            self.lat_tlb_walk.record(self.t_tlb_miss);
            now + self.t_tlb_miss
        }
    }

    /// Load path below the L1: L2 lookup, then memory on a miss.
    fn fill_from_l2(&mut self, v: VAddr, p: PAddr, t: Cycle) -> Cycle {
        match self.l2.access(v, p, AccessKind::Load) {
            Outcome::Hit => {
                self.stats.l2_load_hits += 1;
                self.attr.charge(Stage::L2, self.t_l2_hit);
                self.lat_l2_hit.record(self.t_l2_hit);
                t + self.t_l2_hit
            }
            Outcome::Miss { writeback } => {
                self.stats.mem_loads += 1;
                self.attr.charge(Stage::L2, self.t_l2_hit);
                self.attr.charge(Stage::Bus, self.bus.request_latency());
                let request = t + self.t_l2_hit + self.bus.request_latency();
                let (data_ready, bd) = match self.mc.try_read_line_attributed(p, request) {
                    Ok(r) => r,
                    Err(e) => {
                        // A misconfigured or torn-down remapping — or a
                        // degraded hybrid tier — degrades to a NACKed
                        // access instead of aborting the machine; the
                        // controller counts the rejection and the
                        // infallible path charges the bounce.
                        match e {
                            McError::TierDegraded { .. } | McError::LineRetired { .. } => {
                                self.stats.tier_faults += 1;
                            }
                            _ => self.stats.remap_faults += 1,
                        }
                        self.mc.read_line_attributed(p, request)
                    }
                };
                self.attr.charge(Stage::McFrontEnd, bd.frontend + bd.sram);
                self.attr.charge(Stage::PgTbl, bd.pgtbl);
                self.attr.charge(Stage::Dram, bd.dram);
                let crit = self.bus.demand_transfer(self.l2_line, data_ready);
                self.attr.charge(Stage::Bus, crit - data_ready);
                self.lat_mem.record(crit - t);
                if let Some(wb) = writeback {
                    self.post_writeback_to_mem(wb, crit);
                }
                crit
            }
            Outcome::Bypass => unreachable!("L2 loads never bypass"),
        }
    }

    /// Store that bypassed the write-around L1 and lands in the
    /// write-allocate L2.
    fn store_to_l2(&mut self, v: VAddr, p: PAddr, t: Cycle) -> Cycle {
        // Every branch retires the store in `t_l2_hit` cycles (write
        // allocation runs in the background), so the demand cost is L2 time.
        self.attr.charge(Stage::L2, self.t_l2_hit);
        match self.l2.access(v, p, AccessKind::Store) {
            Outcome::Hit => t + self.t_l2_hit,
            Outcome::Miss { writeback } => {
                // Write allocation: fetch the line in the background; the
                // store itself retires through the write buffer.
                self.stats.store_mem += 1;
                let request = t + self.t_l2_hit + self.bus.request_latency();
                let data_ready = self.mc.read_line(p, request);
                self.bus.background_transfer(self.l2_line, data_ready);
                if let Some(wb) = writeback {
                    self.post_writeback_to_mem(wb, data_ready);
                }
                t + self.t_l2_hit
            }
            Outcome::Bypass => t + self.t_l2_hit,
        }
    }

    /// A dirty L1 victim is written into the L2 (physically indexed, so
    /// the victim's virtual address is irrelevant). If the L2 no longer
    /// holds the line, the fragment is posted straight to memory.
    fn writeback_to_l2(&mut self, line: PAddr, t: Cycle) {
        let v = VAddr::new(line.raw());
        if self.l2.probe(v, line) {
            self.l2.access(v, line, AccessKind::Store);
        } else {
            self.post_writeback_to_mem(line, t);
        }
    }

    /// Posts a dirty line to memory: occupies the bus and DRAM, stalls
    /// nobody.
    fn post_writeback_to_mem(&mut self, line: PAddr, t: Cycle) {
        self.stats.mem_writebacks += 1;
        let arrival = self.bus.background_transfer(self.l2_line, t);
        self.mc.write_line(line, arrival);
    }

    /// Hardware next-line prefetch into the L1 (HP PA 7200 style): on a
    /// demand L1 load miss, fetch the next 32-byte line. Never crosses a
    /// page (physical contiguity is only guaranteed within one).
    fn prefetch_next_l1_line(&mut self, v: VAddr, p: PAddr, t: Cycle) {
        let v_next = v.align_down(self.l1_line).add(self.l1_line);
        if v_next.page_number() != v.page_number() {
            return;
        }
        let p_next = p.align_down(self.l1_line).add(self.l1_line);
        if self.l1.probe(v_next, p_next) {
            return;
        }
        self.stats.l1_prefetches += 1;
        if !self.l2.probe(v_next, p_next) {
            // Pull the containing L2 line from memory in the background —
            // this is the L2/bus contention the paper observes when cache
            // prefetching misfires.
            let data_ready = self.mc.read_line(p_next, t + self.bus.request_latency());
            self.bus.background_transfer(self.l2_line, data_ready);
            if let Some(wb) = self.l2.prefetch_fill(v_next, p_next) {
                self.post_writeback_to_mem(wb, data_ready);
            }
        }
        if let Some(wb) = self.l1.prefetch_fill(v_next, p_next) {
            self.writeback_to_l2(wb, t);
        }
    }

    /// Flushes (writes back + invalidates) one L1-line-sized block from
    /// both caches. Returns `true` if anything was present.
    pub fn flush_line(&mut self, v: VAddr, p: PAddr, now: Cycle) -> bool {
        let mut present = false;
        match self.l1.flush_line(v, p) {
            FlushOutcome::Dirty => {
                present = true;
                self.writeback_to_l2(p.align_down(self.l1_line), now);
            }
            FlushOutcome::Clean => present = true,
            FlushOutcome::NotPresent => {}
        }
        match self.l2.flush_line(v, p) {
            FlushOutcome::Dirty => {
                present = true;
                self.post_writeback_to_mem(p.align_down(self.l2_line), now);
            }
            FlushOutcome::Clean => present = true,
            FlushOutcome::NotPresent => {}
        }
        present
    }

    /// Purges (invalidates without writeback) one L1-line-sized block from
    /// both caches.
    pub fn purge_line(&mut self, v: VAddr, p: PAddr) {
        self.l1.purge_line(v, p);
        self.l2.purge_line(v, p);
    }

    /// Drops any TLB entry covering the page of `v` (after the OS changes
    /// a mapping).
    pub fn tlb_shootdown(&mut self, v: VAddr) {
        self.tlb.flush_page(v.page_number());
    }

    /// Flushes the whole TLB (context switch; the model has no ASIDs).
    pub fn tlb_flush(&mut self) {
        self.tlb.flush();
    }

    /// Collects every metric in the hierarchy into one registry: the
    /// system's own `mem.*`/`attr.*` namespaces, the caches under
    /// `l1.cache.*`/`l2.cache.*`, and the TLB, bus, controller
    /// (`mc.*`, `mc.pgtbl.*`, `mc.pf.*`, `mc.desc.*`), and DRAM under
    /// their component namespaces.
    pub fn observe_all(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.observe(self);
        let mut tmp = MetricsRegistry::new();
        tmp.observe(&self.l1);
        m.absorb("l1", &tmp);
        let mut tmp = MetricsRegistry::new();
        tmp.observe(&self.l2);
        m.absorb("l2", &tmp);
        m.observe(&self.tlb);
        m.observe(&self.bus);
        m.observe(&self.mc);
        m
    }

    /// Serializes the whole hierarchy: caches, TLB, stream buffers, bus,
    /// controller (with DRAM, page table, and descriptors), demand
    /// statistics, cycle attribution, and every latency histogram.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_MSYS);
        self.l1.snap_save(w);
        self.l2.snap_save(w);
        self.tlb.snap_save(w);
        self.bus.snap_save(w);
        self.mc.snap_save(w);
        w.bool(self.streams.is_some());
        if let Some(s) = &self.streams {
            s.snap_save(w);
        }
        let s = &self.stats;
        for v in [
            s.loads,
            s.l1_load_hits,
            s.l2_load_hits,
            s.mem_loads,
            s.load_cycles,
            s.stores,
            s.store_l1_hits,
            s.store_mem,
            s.store_cycles,
            s.l1_prefetches,
            s.stream_loads,
            s.mem_writebacks,
            s.tlb_penalties,
            s.remap_faults,
            s.tier_faults,
        ] {
            w.u64(v);
        }
        for stage in Stage::ALL {
            w.u64(self.attr.get(stage));
        }
        for h in [
            &self.lat_l1_hit,
            &self.lat_l2_hit,
            &self.lat_stream_hit,
            &self.lat_mem,
            &self.lat_tlb_walk,
            &self.lat_load,
            &self.lat_store,
        ] {
            w.u64_slice(&h.state_words());
        }
    }

    /// Restores the state saved by [`MemorySystem::snap_save`] into a
    /// system freshly assembled from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the image is malformed or the hierarchy
    /// geometry disagrees.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_MSYS)?;
        self.l1.snap_load(r)?;
        self.l2.snap_load(r)?;
        self.tlb.snap_load(r)?;
        self.bus.snap_load(r)?;
        self.mc.snap_load(r)?;
        let had_streams = r.bool()?;
        match (&mut self.streams, had_streams) {
            (Some(s), true) => s.snap_load(r)?,
            (None, false) => {}
            _ => return Err(SnapError::Geometry("stream buffer presence")),
        }
        let s = &mut self.stats;
        for v in [
            &mut s.loads,
            &mut s.l1_load_hits,
            &mut s.l2_load_hits,
            &mut s.mem_loads,
            &mut s.load_cycles,
            &mut s.stores,
            &mut s.store_l1_hits,
            &mut s.store_mem,
            &mut s.store_cycles,
            &mut s.l1_prefetches,
            &mut s.stream_loads,
            &mut s.mem_writebacks,
            &mut s.tlb_penalties,
            &mut s.remap_faults,
            &mut s.tier_faults,
        ] {
            *v = r.u64()?;
        }
        self.attr = Attribution::new();
        for stage in Stage::ALL {
            self.attr.charge(stage, r.u64()?);
        }
        for h in [
            &mut self.lat_l1_hit,
            &mut self.lat_l2_hit,
            &mut self.lat_stream_hit,
            &mut self.lat_mem,
            &mut self.lat_tlb_walk,
            &mut self.lat_load,
            &mut self.lat_store,
        ] {
            *h = Histogram::from_state_words(&r.u64_vec()?)
                .ok_or(SnapError::Geometry("memory-system latency histogram"))?;
        }
        Ok(())
    }
}

impl Observe for MemorySystem {
    fn observe(&self, m: &mut MetricsRegistry) {
        let s = self.stats;
        m.counter("mem.loads", s.loads);
        m.counter("mem.l1_load_hits", s.l1_load_hits);
        m.counter("mem.l2_load_hits", s.l2_load_hits);
        m.counter("mem.mem_loads", s.mem_loads);
        m.counter("mem.load_cycles", s.load_cycles);
        m.counter("mem.stores", s.stores);
        m.counter("mem.store_l1_hits", s.store_l1_hits);
        m.counter("mem.store_mem", s.store_mem);
        m.counter("mem.store_cycles", s.store_cycles);
        m.counter("mem.l1_prefetches", s.l1_prefetches);
        m.counter("mem.stream_loads", s.stream_loads);
        m.counter("mem.mem_writebacks", s.mem_writebacks);
        m.counter("mem.tlb_penalties", s.tlb_penalties);
        m.counter("mem.remap_faults", s.remap_faults);
        m.counter("mem.tier_faults", s.tier_faults);
        m.gauge("mem.avg_load_time", s.avg_load_time());
        m.histogram("mem.lat_l1_hit", &self.lat_l1_hit);
        m.histogram("mem.lat_l2_hit", &self.lat_l2_hit);
        m.histogram("mem.lat_stream_hit", &self.lat_stream_hit);
        m.histogram("mem.lat_mem", &self.lat_mem);
        m.histogram("mem.lat_tlb_walk", &self.lat_tlb_walk);
        m.histogram("mem.lat_load", &self.lat_load);
        m.histogram("mem.lat_store", &self.lat_store);
        for (stage, cycles) in self.attr.entries() {
            m.counter(&format!("attr.{}", stage.name()), cycles);
        }
        m.counter("attr.total", self.attr.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(l1_prefetch: bool, mc_prefetch: bool) -> MemorySystem {
        let cfg = SystemConfig::paint_small().with_prefetch(mc_prefetch, l1_prefetch);
        MemorySystem::new(&cfg)
    }

    fn va(x: u64) -> VAddr {
        VAddr::new(x)
    }
    fn pa(x: u64) -> PAddr {
        PAddr::new(x)
    }
    const NO_SPAN: (u64, u64) = (0, 1);

    fn span_of(v: VAddr) -> (u64, u64) {
        (v.page_number(), 1)
    }

    #[test]
    fn first_load_pays_memory_latency() {
        let mut ms = system(false, false);
        let done = ms.load(va(0x10000), pa(0x10000), span_of(va(0x10000)), 0);
        // TLB miss (30) + memory path (~40).
        assert!((60..=90).contains(&done), "cold load took {done}");
        assert_eq!(ms.stats().mem_loads, 1);
    }

    #[test]
    fn l1_hit_is_single_cycle() {
        let mut ms = system(false, false);
        let v = va(0x10000);
        let t1 = ms.load(v, pa(0x10000), span_of(v), 0);
        let t2 = ms.load(v, pa(0x10000), span_of(v), t1);
        assert_eq!(t2 - t1, 1);
        assert_eq!(ms.stats().l1_load_hits, 1);
    }

    #[test]
    fn l2_hit_is_seven_cycles() {
        let mut ms = system(false, false);
        let v = va(0x10000);
        let t1 = ms.load(v, pa(0x10000), span_of(v), 0);
        // Same 128-byte L2 line, different 32-byte L1 line.
        let v2 = va(0x10040);
        let t2 = ms.load(v2, pa(0x10040), span_of(v2), t1);
        assert_eq!(t2 - t1, 7);
        assert_eq!(ms.stats().l2_load_hits, 1);
    }

    #[test]
    fn ratios_sum_to_one_for_loads() {
        let mut ms = system(false, false);
        let mut t = 0;
        for i in 0..1000u64 {
            let v = va(0x10000 + i * 56);
            t = ms.load(v, pa(0x10000 + i * 56), span_of(v), t);
        }
        let s = ms.stats();
        assert_eq!(s.loads, 1000);
        assert_eq!(s.l1_load_hits + s.l2_load_hits + s.mem_loads, s.loads);
        let total = s.l1_ratio() + s.l2_ratio() + s.mem_ratio();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn store_hits_update_in_place() {
        let mut ms = system(false, false);
        let v = va(0x10000);
        let t1 = ms.load(v, pa(0x10000), span_of(v), 0);
        let t2 = ms.store(v, pa(0x10000), span_of(v), t1);
        assert_eq!(t2 - t1, 1);
        assert_eq!(ms.stats().store_l1_hits, 1);
    }

    #[test]
    fn store_miss_writes_around_l1() {
        let mut ms = system(false, false);
        let v = va(0x10000);
        // Cold store: L1 bypass, L2 write-allocate in background.
        ms.store(v, pa(0x10000), span_of(v), 0);
        assert_eq!(ms.stats().store_mem, 1);
        assert!(
            !ms.l1().probe(v, pa(0x10000)),
            "write-around must not fill L1"
        );
        assert!(ms.l2().probe(v, pa(0x10000)), "write-allocate must fill L2");
    }

    #[test]
    fn l1_prefetch_makes_streams_cheaper() {
        let run = |l1pf: bool| {
            let mut ms = system(l1pf, false);
            let mut t = 0;
            for i in 0..512u64 {
                let v = va(0x10000 + i * 8);
                t = ms.load(v, pa(0x10000 + i * 8), span_of(v), t);
            }
            (t, ms.stats())
        };
        let (t_off, _) = run(false);
        let (t_on, s_on) = run(true);
        assert!(t_on < t_off, "prefetch on: {t_on}, off: {t_off}");
        assert!(s_on.l1_prefetches > 0);
    }

    #[test]
    fn tlb_miss_charged_once_per_page() {
        let mut ms = system(false, false);
        let mut t = 0;
        for i in 0..16u64 {
            let v = va(0x10000 + i * 8);
            t = ms.load(v, pa(0x10000 + i * 8), span_of(v), t);
        }
        assert_eq!(ms.stats().tlb_penalties, 1);
    }

    #[test]
    fn superpage_span_covers_many_pages() {
        let mut ms = system(false, false);
        let mut t = 0;
        // All loads report a 16-page superpage starting at page 16.
        for i in 0..16u64 {
            let v = va((16 + i) * 4096);
            t = ms.load(v, pa(0x100000 + i * 4096), (16, 16), t);
        }
        assert_eq!(ms.stats().tlb_penalties, 1);
    }

    #[test]
    fn flush_line_writes_back_dirty_data() {
        let mut ms = system(false, false);
        let v = va(0x10000);
        let p = pa(0x10000);
        let t = ms.load(v, p, span_of(v), 0);
        ms.store(v, p, span_of(v), t);
        let wb_before = ms.stats().mem_writebacks;
        assert!(ms.flush_line(v, p, t));
        assert!(ms.stats().mem_writebacks > wb_before);
        assert!(!ms.l1().probe(v, p));
        assert!(!ms.l2().probe(v, p));
        assert!(!ms.flush_line(v, p, t));
    }

    #[test]
    fn tlb_shootdown_forces_repenalty() {
        let mut ms = system(false, false);
        let v = va(0x10000);
        let t = ms.load(v, pa(0x10000), span_of(v), 0);
        ms.tlb_shootdown(v);
        ms.load(v, pa(0x10000), span_of(v), t);
        assert_eq!(ms.stats().tlb_penalties, 2);
    }

    #[test]
    fn reset_stats_clears_counters_keeps_contents() {
        let mut ms = system(false, false);
        let v = va(0x10000);
        let t = ms.load(v, pa(0x10000), span_of(v), 0);
        ms.reset_stats();
        assert_eq!(ms.stats().loads, 0);
        let t2 = ms.load(v, pa(0x10000), span_of(v), t);
        assert_eq!(t2 - t, 1, "contents survive a stats reset");
    }

    #[test]
    fn unused_span_constant_is_single_page() {
        assert_eq!(NO_SPAN.1, 1);
    }

    #[test]
    fn l1_prefetch_stops_at_page_boundary() {
        let mut ms = system(true, false);
        // Miss on the last L1 line of a page: the next line is in another
        // page, whose physical contiguity is unknown — no prefetch.
        let v = va(0x10000 + 4096 - 32);
        ms.load(v, pa(0x20000 + 4096 - 32), span_of(v), 0);
        assert_eq!(ms.stats().l1_prefetches, 0);
        // One line earlier, the prefetch fires.
        let v2 = va(0x20000);
        ms.load(v2, pa(0x30000), span_of(v2), 1000);
        assert_eq!(ms.stats().l1_prefetches, 1);
    }

    #[test]
    fn store_after_load_hits_l1_and_dirties() {
        let mut ms = system(false, false);
        let (v, p) = (va(0x10000), pa(0x10000));
        let t = ms.load(v, p, span_of(v), 0);
        let t2 = ms.store(v, p, span_of(v), t);
        assert_eq!(t2 - t, 1);
        // Evicting via a conflicting line forces the dirty writeback path.
        let (v3, p3) = (va(0x10000 + 32 * 1024), pa(0x10000 + 32 * 1024));
        ms.load(v3, p3, span_of(v3), t2);
        assert!(ms.l1().stats().writebacks > 0);
    }

    #[test]
    fn background_prefetch_consumes_bus_bandwidth() {
        // L1 prefetch fills that miss the L2 pull whole lines over the
        // bus in the background; the bus byte count must show them even
        // though no demand access waited.
        // Touch the *last* L1 line of every other L2 line: each next-line
        // prefetch then drags in an L2 line the program never uses — pure
        // overhead traffic that must show up in the bus counters.
        let run = |l1pf: bool| {
            let mut ms = system(l1pf, false);
            let mut t = 0;
            for i in 0..128u64 {
                let a = 0x100000 + i * 256 + 96;
                t = ms.load(va(a), pa(a), (va(a).page_number(), 1), t);
            }
            ms.bus().stats()
        };
        let off = run(false);
        let on = run(true);
        assert!(
            on.bytes > off.bytes,
            "prefetch traffic must be visible: {} !> {}",
            on.bytes,
            off.bytes
        );
        assert!(on.transfers > off.transfers);
    }

    #[test]
    fn stream_buffers_serve_sequential_misses() {
        let mk = |streams: bool| {
            let mut cfg = SystemConfig::paint_small();
            if streams {
                cfg = cfg.with_stream_buffers();
            }
            MemorySystem::new(&cfg)
        };
        let run = |mut ms: MemorySystem| {
            let mut t = 0;
            for i in 0..512u64 {
                let a = 0x100000 + i * 8;
                t = ms.load(va(a), pa(a), (va(a).page_number(), 1), t);
            }
            (t, ms.stats())
        };
        let (t_off, _) = run(mk(false));
        let (t_on, s_on) = run(mk(true));
        assert!(
            s_on.stream_loads > 50,
            "streams serve the walk: {}",
            s_on.stream_loads
        );
        assert!(t_on < t_off, "{t_on} !< {t_off}");
    }

    #[test]
    fn stream_buffers_useless_on_random_accesses() {
        let mut ms = MemorySystem::new(&SystemConfig::paint_small().with_stream_buffers());
        let mut t = 0;
        let mut lcg = 99u64;
        for _ in 0..256 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (0x100000 + ((lcg >> 16) % (1 << 22))) & !7;
            t = ms.load(va(a), pa(a), (va(a).page_number(), 1), t);
        }
        assert_eq!(
            ms.stats().stream_loads,
            0,
            "irregular access gets no stream hits"
        );
    }

    #[test]
    fn programmed_stream_serves_strided_walk() {
        let mut ms = MemorySystem::new(&SystemConfig::paint_small().with_stream_buffers());
        let stride = 4096i64 + 64; // row-like stride
        ms.program_stream(pa(0x100000), stride, 0);
        let mut t = 1000;
        let mut hits = 0;
        for k in 0..16u64 {
            let a = 0x100000 + k * stride as u64;
            let before = ms.stats().stream_loads;
            t = ms.load(va(a), pa(a), (va(a).page_number(), 1), t);
            hits += ms.stats().stream_loads - before;
        }
        assert!(hits >= 12, "programmed stream should serve most: {hits}");
    }

    #[test]
    fn store_invalidates_streamed_line() {
        let mut ms = MemorySystem::new(&SystemConfig::paint_small().with_stream_buffers());
        // Allocate a stream, then dirty the next line it holds.
        let t = ms.load(
            va(0x100000),
            pa(0x100000),
            (va(0x100000).page_number(), 1),
            0,
        );
        let t = ms.store(
            va(0x100020),
            pa(0x100020),
            (va(0x100020).page_number(), 1),
            t + 100,
        );
        // The load of the stored line must NOT come from the (stale) buffer.
        let before = ms.stats().stream_loads;
        ms.load(
            va(0x100020),
            pa(0x100020),
            (va(0x100020).page_number(), 1),
            t + 100,
        );
        assert_eq!(ms.stats().stream_loads, before);
    }

    #[test]
    fn attribution_totals_equal_demand_cycles() {
        // Exercise every demand path: cold misses, L1/L2 hits, TLB
        // penalties, stores, prefetch and stream variants.
        for (l1pf, mcpf, streams) in [
            (false, false, false),
            (true, true, false),
            (false, false, true),
        ] {
            let mut cfg = SystemConfig::paint_small().with_prefetch(mcpf, l1pf);
            if streams {
                cfg = cfg.with_stream_buffers();
            }
            let mut ms = MemorySystem::new(&cfg);
            let mut t = 0;
            for i in 0..600u64 {
                let a = 0x100000 + (i * 72) % (1 << 20);
                let v = va(a);
                if i % 5 == 4 {
                    t = ms.store(v, pa(a), span_of(v), t);
                } else {
                    t = ms.load(v, pa(a), span_of(v), t);
                }
            }
            let s = ms.stats();
            assert_eq!(
                ms.attribution().total(),
                s.load_cycles + s.store_cycles,
                "stage totals must sum to demand cycles \
                 (l1pf={l1pf} mcpf={mcpf} streams={streams})"
            );
            assert_eq!(ms.load_latency().count(), s.loads);
            assert_eq!(ms.store_latency().count(), s.stores);
            // Write allocations are background fills, so only demand load
            // fills appear in the memory-path latency distribution.
            assert_eq!(ms.mem_latency().count(), s.mem_loads);
        }
    }

    #[test]
    fn attribution_survives_shadow_gathers() {
        use impulse_core::RemapFn;
        use impulse_types::{MAddr, PvAddr};

        let mut ms = system(false, false);
        let shadow = ms.mc().shadow_base();
        let region = impulse_types::PRange::new(shadow, 4096);
        ms.mc_mut()
            .claim_descriptor(region, RemapFn::strided(PvAddr::new(0), 8, 1024))
            .unwrap();
        for page in 0..32u64 {
            ms.mc_mut().map_page(page, MAddr::new(page * 4096));
        }
        let mut t = 0;
        for i in 0..16u64 {
            let a = shadow.raw() + i * 32;
            let v = va(a);
            t = ms.load(v, PAddr::new(a), span_of(v), t);
        }
        let s = ms.stats();
        assert_eq!(ms.attribution().total(), s.load_cycles + s.store_cycles);
        assert!(
            ms.attribution().get(Stage::PgTbl) > 0,
            "gathers must charge controller page-table time"
        );
        assert!(ms.attribution().get(Stage::Dram) > 0);
    }

    #[test]
    fn observe_all_collects_every_namespace() {
        let mut ms = system(false, false);
        let v = va(0x10000);
        let t = ms.load(v, pa(0x10000), span_of(v), 0);
        ms.store(v, pa(0x10000), span_of(v), t);

        let reg = ms.observe_all();
        let s = ms.stats();
        assert_eq!(reg.counter_value("mem.loads"), Some(s.loads));
        assert_eq!(
            reg.counter_value("l1.cache.loads"),
            Some(ms.l1().stats().loads)
        );
        assert_eq!(
            reg.counter_value("l2.cache.loads"),
            Some(ms.l2().stats().loads)
        );
        assert_eq!(
            reg.counter_value("tlb.lookups"),
            Some(ms.tlb().stats().lookups)
        );
        assert_eq!(
            reg.counter_value("bus.transfers"),
            Some(ms.bus().stats().transfers)
        );
        assert_eq!(
            reg.counter_value("mc.line_reads"),
            Some(ms.mc().stats().line_reads)
        );
        assert_eq!(
            reg.counter_value("dram.reads"),
            Some(ms.mc().dram().stats().reads)
        );
        assert_eq!(
            reg.counter_value("attr.total"),
            Some(s.load_cycles + s.store_cycles)
        );
        assert!(reg.histogram_value("mem.lat_load").unwrap().count() > 0);
    }

    #[test]
    fn reset_clears_attribution_and_histograms() {
        let mut ms = system(false, false);
        let v = va(0x10000);
        ms.load(v, pa(0x10000), span_of(v), 0);
        assert!(ms.attribution().total() > 0);
        ms.reset_stats();
        assert_eq!(ms.attribution().total(), 0);
        assert_eq!(ms.load_latency().count(), 0);
        assert_eq!(ms.mem_latency().count(), 0);
    }

    #[test]
    fn ecc_corrects_injected_singles_with_zero_data_diff() {
        use impulse_fault::{EccConfig, EccMode, FaultConfig, Trigger};
        let run = |faults: FaultConfig| {
            let cfg = SystemConfig::paint_small().with_faults(faults);
            let mut ms = MemorySystem::new(&cfg);
            let mut t = 0;
            for i in 0..256u64 {
                let a = 0x100000 + i * 136;
                t = ms.load(va(a), pa(a), (va(a).page_number(), 1), t);
            }
            t
        };
        let clean = run(FaultConfig::none());
        let faults = FaultConfig {
            seed: 1999,
            dram_flip: Trigger::EveryN { every: 4, phase: 0 },
            ecc: EccConfig {
                mode: EccMode::Secded,
                ..EccConfig::default()
            },
            ..FaultConfig::none()
        };
        let cfg = SystemConfig::paint_small().with_faults(faults);
        let mut ms = MemorySystem::new(&cfg);
        let mut t = 0;
        for i in 0..256u64 {
            let a = 0x100000 + i * 136;
            t = ms.load(va(a), pa(a), (va(a).page_number(), 1), t);
        }
        let ecc = ms.mc().ecc_stats();
        assert!(ecc.corrected > 0, "flips must reach the ECC stage");
        assert_eq!(ecc.detected_double, 0);
        assert_eq!(
            ecc.corrupt_sig, 0,
            "SECDED corrects every single: no data diff"
        );
        assert!(t > clean, "correction penalties must cost cycles");
        // The demand attribution invariant survives fault injection.
        let s = ms.stats();
        assert_eq!(ms.attribution().total(), s.load_cycles + s.store_cycles);
    }

    #[test]
    fn bus_timeouts_slow_the_system_but_stay_bounded() {
        use impulse_fault::{FaultConfig, Trigger};
        let run = |faults: FaultConfig| {
            let cfg = SystemConfig::paint_small().with_faults(faults);
            let mut ms = MemorySystem::new(&cfg);
            let mut t = 0;
            for i in 0..256u64 {
                let a = 0x100000 + i * 136;
                t = ms.load(va(a), pa(a), (va(a).page_number(), 1), t);
            }
            (t, ms.bus().fault_stats())
        };
        let (clean, none) = run(FaultConfig::none());
        assert_eq!(none.timeouts, 0);
        let (faulty, f) = run(FaultConfig {
            seed: 7,
            bus_timeout: Trigger::Permille(200),
            ..FaultConfig::none()
        });
        assert!(f.timeouts > 0);
        assert!(f.retries <= f.timeouts * 3, "retry bound holds end to end");
        assert!(faulty > clean);
        assert_eq!(
            faulty - clean,
            f.recovery_cycles,
            "slowdown is exactly the recovery time"
        );
    }

    #[test]
    fn torn_down_remap_degrades_and_counts() {
        use impulse_core::RemapFn;
        use impulse_types::{MAddr, PvAddr};

        let mut ms = system(false, false);
        let shadow = ms.mc().shadow_base();
        let region = impulse_types::PRange::new(shadow, 4096);
        let desc = ms
            .mc_mut()
            .claim_descriptor(region, RemapFn::strided(PvAddr::new(0), 8, 1024))
            .unwrap();
        for page in 0..32u64 {
            ms.mc_mut().map_page(page, MAddr::new(page * 4096));
        }
        let v = va(shadow.raw());
        let p = PAddr::new(shadow.raw());
        let t = ms.load(v, p, span_of(v), 0);
        assert_eq!(ms.stats().remap_faults, 0);

        // Tear the descriptor down behind the running workload (a
        // misbehaving process, or a chaos schedule): subsequent shadow
        // loads degrade to NACKs instead of aborting the machine.
        ms.mc_mut().release_descriptor(desc).unwrap();
        let v2 = va(shadow.raw() + 4 * 128); // different L2 line
        let done = ms.load(v2, PAddr::new(v2.raw()), span_of(v2), t);
        assert!(done > t, "the NACKed access still costs time");
        assert_eq!(ms.stats().remap_faults, 1);
        assert_eq!(ms.mc().stats().rejected_reads, 1);
        // Accounting parity: attribution still sums to demand cycles.
        let s = ms.stats();
        assert_eq!(ms.attribution().total(), s.load_cycles + s.store_cycles);
        let reg = ms.observe_all();
        assert_eq!(reg.counter_value("mem.remap_faults"), Some(1));
    }

    #[test]
    fn purge_line_discards_dirty_data() {
        let mut ms = system(false, false);
        let (v, p) = (va(0x10000), pa(0x10000));
        let t = ms.load(v, p, span_of(v), 0);
        ms.store(v, p, span_of(v), t);
        let wb = ms.stats().mem_writebacks;
        ms.purge_line(v, p);
        assert_eq!(ms.stats().mem_writebacks, wb, "purge never writes back");
        assert!(!ms.l1().probe(v, p));
    }
}
