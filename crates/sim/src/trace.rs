//! Access-trace capture.
//!
//! The Paint simulator the paper used was an instruction-set interpreter;
//! its traces were the raw material for memory-system analysis. This
//! module provides the equivalent facility: a bounded recorder that the
//! [`Machine`](crate::Machine) feeds with every demand access, useful for
//! debugging remappings (did the alias stream look like we thought?),
//! for offline locality analysis, and for building regression fixtures.

use impulse_types::{AccessKind, Cycle, PAddr, VAddr};

/// One recorded demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the access was issued.
    pub at: Cycle,
    /// Load or store.
    pub kind: AccessKind,
    /// Virtual address issued by the program.
    pub vaddr: VAddr,
    /// Bus address after MMU translation (shadow addresses included).
    pub paddr: PAddr,
    /// Cycles the access took to complete.
    pub latency: Cycle,
}

/// A bounded in-memory trace recorder.
///
/// Recording stops silently once `capacity` events are held (the
/// `dropped` counter keeps the overflow visible), so a tracer can be left
/// attached to a long run without unbounded memory growth.
///
/// # Examples
///
/// ```
/// use impulse_sim::{Machine, SystemConfig, Tracer};
///
/// let mut m = Machine::new(&SystemConfig::paint_small());
/// let data = m.alloc_region(4096, 8)?;
/// m.attach_tracer(Tracer::new(1024));
/// m.load(data.start());
/// m.load(data.start().add(8));
/// let trace = m.take_tracer().expect("tracer was attached");
/// assert_eq!(trace.events().len(), 2);
/// assert!(trace.events()[1].latency < trace.events()[0].latency);
/// # Ok::<(), impulse_os::OsError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// Creates a recorder holding up to `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be non-zero");
        Self {
            events: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event (drops it if full).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in issue order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the recording (capacity is kept).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Events touching the given bus-address range, in issue order.
    pub fn touching(&self, range: impulse_types::PRange) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| range.contains(e.paddr))
    }

    /// Writes the trace as CSV (`at,kind,vaddr,paddr,latency`) for
    /// offline analysis.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "at,kind,vaddr,paddr,latency")?;
        for e in &self.events {
            writeln!(
                w,
                "{},{},{:#x},{:#x},{}",
                e.at,
                e.kind,
                e.vaddr.raw(),
                e.paddr.raw(),
                e.latency
            )?;
        }
        Ok(())
    }

    /// Writes the trace in Chrome trace-event JSON format, loadable in
    /// `chrome://tracing` or Perfetto: each access becomes a complete
    /// (`"ph":"X"`) event with `ts` = issue cycle and `dur` = latency,
    /// with the addresses in `args`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_chrome_trace<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        use impulse_obs::Json;
        let events = self
            .events
            .iter()
            .map(|e| {
                let mut ev = Json::obj();
                ev.set("name", Json::Str(e.kind.to_string()));
                ev.set("cat", Json::Str("mem".into()));
                ev.set("ph", Json::Str("X".into()));
                ev.set("ts", Json::UInt(e.at));
                ev.set("dur", Json::UInt(e.latency));
                ev.set("pid", Json::UInt(0));
                ev.set("tid", Json::UInt(0));
                let mut args = Json::obj();
                args.set("vaddr", Json::Str(format!("{:#x}", e.vaddr.raw())));
                args.set("paddr", Json::Str(format!("{:#x}", e.paddr.raw())));
                ev.set("args", args);
                ev
            })
            .collect();
        let mut root = Json::obj();
        root.set("traceEvents", Json::Arr(events));
        root.set("displayTimeUnit", Json::Str("ns".into()));
        let mut other = Json::obj();
        other.set("dropped_events", Json::UInt(self.dropped));
        root.set("otherData", other);
        write!(w, "{root}")
    }

    /// Simple reuse-distance summary: for each unique line (of
    /// `line_bytes`), how many times it was touched. Returns
    /// `(unique_lines, total_touches)`.
    pub fn line_touch_summary(&self, line_bytes: u64) -> (usize, u64) {
        let mut seen = std::collections::HashMap::new();
        for e in &self.events {
            *seen
                .entry(e.paddr.align_down(line_bytes).raw())
                .or_insert(0u64) += 1;
        }
        (seen.len(), self.events.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Cycle, addr: u64) -> TraceEvent {
        TraceEvent {
            at,
            kind: AccessKind::Load,
            vaddr: VAddr::new(addr),
            paddr: PAddr::new(addr),
            latency: 1,
        }
    }

    #[test]
    fn records_in_order_up_to_capacity() {
        let mut t = Tracer::new(2);
        t.record(ev(1, 0));
        t.record(ev(2, 8));
        t.record(ev(3, 16));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].at, 1);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn touching_filters_by_range() {
        let mut t = Tracer::new(16);
        for i in 0..8 {
            t.record(ev(i, i * 64));
        }
        let r = impulse_types::PRange::new(PAddr::new(128), 128);
        let hits: Vec<_> = t.touching(r).map(|e| e.paddr.raw()).collect();
        assert_eq!(hits, vec![128, 192]);
    }

    #[test]
    fn line_summary_counts_unique_lines() {
        let mut t = Tracer::new(16);
        for i in 0..8 {
            t.record(ev(i, i * 8)); // two 32-byte lines
        }
        let (unique, total) = t.line_touch_summary(32);
        assert_eq!(unique, 2);
        assert_eq!(total, 8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Tracer::new(0);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        use impulse_obs::Json;
        let mut t = Tracer::new(2);
        t.record(ev(10, 32));
        t.record(TraceEvent {
            at: 20,
            kind: AccessKind::Store,
            vaddr: VAddr::new(64),
            paddr: PAddr::new(64),
            latency: 7,
        });
        t.record(ev(30, 96)); // overflows capacity
        let mut buf = Vec::new();
        t.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = Json::parse(&text).expect("chrome trace must be valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::items)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        let first = &events[0];
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("ts").and_then(Json::as_u64), Some(10));
        assert_eq!(first.get("dur").and_then(Json::as_u64), Some(1));
        assert_eq!(first.get("name").and_then(Json::as_str), Some("load"));
        assert_eq!(
            first
                .get("args")
                .and_then(|a| a.get("paddr"))
                .and_then(Json::as_str),
            Some("0x20")
        );
        assert_eq!(events[1].get("name").and_then(Json::as_str), Some("store"));
        assert_eq!(
            parsed
                .get("otherData")
                .and_then(|o| o.get("dropped_events"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn chrome_trace_with_no_events_is_still_a_valid_document() {
        use impulse_obs::Json;
        let t = Tracer::new(8);
        let mut buf = Vec::new();
        t.write_chrome_trace(&mut buf).unwrap();
        let parsed = Json::parse(&String::from_utf8(buf).unwrap())
            .expect("empty chrome trace must be valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::items)
            .expect("traceEvents must be present even when empty");
        assert!(events.is_empty());
        assert_eq!(
            parsed
                .get("otherData")
                .and_then(|o| o.get("dropped_events"))
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(Json::as_str),
            Some("ns")
        );
        // The empty CSV export is just the header.
        let mut csv = Vec::new();
        t.write_csv(&mut csv).unwrap();
        assert_eq!(
            String::from_utf8(csv).unwrap(),
            "at,kind,vaddr,paddr,latency\n"
        );
    }

    #[test]
    fn chrome_trace_events_parse_back_one_to_one() {
        use impulse_obs::Json;
        let mut t = Tracer::new(64);
        for i in 0..40u64 {
            t.record(ev(i * 3, i * 64));
        }
        let mut buf = Vec::new();
        t.write_chrome_trace(&mut buf).unwrap();
        let parsed = Json::parse(&String::from_utf8(buf).unwrap()).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::items).unwrap();
        assert_eq!(events.len(), 40);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.get("ts").and_then(Json::as_u64), Some(i as u64 * 3));
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        }
    }

    #[test]
    fn csv_round_trips_through_a_writer() {
        let mut t = Tracer::new(4);
        t.record(ev(1, 32));
        t.record(ev(2, 64));
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("at,kind,vaddr,paddr,latency"));
        assert!(s.contains("1,load,0x20,0x20,1"));
    }
}
