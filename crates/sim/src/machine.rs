//! The top-level simulated machine: a single-issue CPU driving the memory
//! system, plus the OS.
//!
//! Workloads are *execution-driven*: they run as ordinary Rust code
//! against a [`Machine`], issuing `load`/`store`/`compute` operations that
//! advance the cycle clock exactly as the Paint simulator's single-issue
//! PA-RISC would (every instruction costs at least one cycle; loads block
//! until data returns; stores retire through the write path).
//!
//! The `sys_*` methods are the Impulse system calls: they perform the
//! kernel work, charge the trap/download costs, and carry out the cache
//! flushes the paper's protocol requires (step 5 of Section 2.1).

use std::sync::Arc;

use impulse_os::{Kernel, OsError, Pid, RemapGrant, RevokeOutcome};
use impulse_types::geom::PAGE_SIZE;
use impulse_types::ident::digest64;
use impulse_types::snap::{open, seal, SnapError, SnapReader, SnapWriter};
use impulse_types::{Cycle, PAddr, VAddr, VRange};

use crate::config::SystemConfig;
use crate::replay::{Recorder, ReplayCapture};
use crate::report::Report;
use crate::system::MemorySystem;
use crate::trace::{TraceEvent, Tracer};

/// Entries in the simulator's internal translation memo (not an
/// architectural structure — the architectural TLB lives in the memory
/// system; this only avoids HashMap lookups on the simulator hot path).
const XLAT_SLOTS: usize = 16;

/// Snapshot section tag for [`Machine`] (`"MACH"`).
const TAG_MACH: u32 = 0x4D41_4348;

/// A simulated machine: CPU clock + memory system + OS.
#[derive(Clone, Debug)]
pub struct Machine {
    kernel: Kernel,
    ms: MemorySystem,
    now: Cycle,
    epoch: Cycle,
    syscall_cycles: u64,
    syscall_failures: u64,
    instructions: u64,
    xlat: [(u64, u64); XLAT_SLOTS], // (vpage, page base bus address)
    tracer: Option<Tracer>,
    /// Completion times of overlapped (non-blocking) load misses.
    inflight: std::collections::VecDeque<Cycle>,
    mshr: usize,
    overlap_threshold: Cycle,
    /// Online superpage promotion threshold (0 = disabled).
    promote_threshold: u64,
    /// Replay recorder, when a capture is being taken (boxed: inactive
    /// recording must cost one null check on the hot paths, nothing
    /// more). Not part of snapshots.
    recorder: Option<Box<Recorder>>,
}

impl Machine {
    /// Boots a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the kernel's and the DRAM's idea of installed capacity
    /// disagree.
    pub fn new(cfg: &SystemConfig) -> Self {
        assert_eq!(
            cfg.kernel.dram_capacity,
            cfg.tier.visible_capacity(cfg.dram.capacity),
            "kernel and memory tiers must agree on installed capacity"
        );
        let mut kernel = Kernel::new(cfg.kernel);
        kernel.attach_caps_injector(cfg.faults.caps_injector());
        Self {
            kernel,
            ms: MemorySystem::new(cfg),
            now: 0,
            epoch: 0,
            syscall_cycles: 0,
            syscall_failures: 0,
            instructions: 0,
            xlat: [(u64::MAX, 0); XLAT_SLOTS],
            tracer: None,
            inflight: std::collections::VecDeque::with_capacity(cfg.mshr),
            mshr: cfg.mshr,
            overlap_threshold: cfg.t_l2_hit,
            promote_threshold: 0,
            recorder: None,
        }
    }

    /// Enables online superpage promotion: once a region takes
    /// `threshold` TLB misses, the OS dynamically rebuilds it as a shadow
    /// superpage (Section 6's "dynamically build superpages"). Only
    /// span-aligned multi-page regions are promoted.
    pub fn enable_auto_promotion(&mut self, threshold: u64) {
        assert!(threshold > 0, "a zero threshold would promote everything");
        self.promote_threshold = threshold;
        if let Some(rec) = &mut self.recorder {
            rec.enable_auto_promotion(threshold);
        }
    }

    /// Retires completed overlapped misses; stalls for the oldest if the
    /// miss window is full.
    #[inline]
    fn make_mshr_slot(&mut self) {
        while let Some(&c) = self.inflight.front() {
            if c <= self.now {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        if self.inflight.len() >= self.mshr {
            let oldest = self.inflight.pop_front().expect("window non-empty");
            self.now = self.now.max(oldest);
        }
    }

    /// Waits for every outstanding load (synchronization point: system
    /// calls, flushes, end of measurement).
    fn drain_loads(&mut self) {
        if let Some(&last) = self.inflight.back() {
            self.now = self.now.max(last);
        }
        self.inflight.clear();
    }

    /// Attaches a trace recorder; every demand access is recorded until
    /// [`Machine::take_tracer`] detaches it.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Detaches and returns the trace recorder, if one was attached.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    // ---- replay capture -------------------------------------------------

    /// Starts recording every public operation into a replay capture
    /// (see [`crate::replay`]). `cfg` must be the configuration this
    /// machine was built from — its fingerprint is stamped into the
    /// capture. Recording never perturbs simulated time or statistics.
    pub fn start_recording(&mut self, cfg: &SystemConfig) {
        self.recorder = Some(Box::new(Recorder::new(cfg.clone(), self.kernel.current())));
    }

    /// Stops recording and returns the capture: `None` if recording was
    /// never started, `Some(Err(why))` if the stream cannot be replayed
    /// faithfully (e.g. it references grants created before recording
    /// began).
    pub fn take_recording(&mut self) -> Option<Result<ReplayCapture, String>> {
        self.recorder.take().map(|r| r.finish())
    }

    // ---- replay-evaluator support (crate-internal) ----------------------

    /// The MSHR-retire step [`Machine::load`] performs before issuing —
    /// for the replay fast path, which bypasses `load` on L1 hits.
    #[inline]
    pub(crate) fn replay_mshr_retire(&mut self) {
        if self.mshr > 1 {
            self.make_mshr_slot();
        }
    }

    /// Advances the clock and instruction counter — the fast path's
    /// equivalent of a completed 1-instruction operation.
    #[inline]
    pub(crate) fn replay_advance(&mut self, cycles: Cycle, instructions: u64) {
        self.now += cycles;
        self.instructions += instructions;
    }

    /// Whether the overlapped-miss window is empty, i.e. the per-load
    /// MSHR-retire step is a guaranteed no-op. The bulk replay path only
    /// engages while this holds — skipping retires is then exact.
    #[inline]
    pub(crate) fn replay_mshr_idle(&self) -> bool {
        self.mshr <= 1 || self.inflight.is_empty()
    }

    /// Mutable memory-system access for the replay evaluator.
    #[inline]
    pub(crate) fn ms_mut(&mut self) -> &mut MemorySystem {
        &mut self.ms
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The OS.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the OS — the hook fault-injection harnesses use
    /// to damage kernel state (e.g. the capability table) out-of-band.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The memory system (for stats and inspection).
    pub fn memory(&self) -> &MemorySystem {
        &self.ms
    }

    /// Instructions retired (loads + stores + compute cycles).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    #[inline]
    fn translate_fast(&mut self, v: VAddr) -> PAddr {
        let vpage = v.page_number();
        let slot = (vpage as usize) & (XLAT_SLOTS - 1);
        let (tag, base) = self.xlat[slot];
        if tag == vpage {
            return PAddr::new(base + v.page_offset());
        }
        let p = self
            .kernel
            .translate(v)
            .unwrap_or_else(|e| panic!("segfault: demand access to {v:?}: {e}"));
        self.xlat[slot] = (vpage, p.page_base().raw());
        p
    }

    fn invalidate_xlat(&mut self) {
        self.xlat = [(u64::MAX, 0); XLAT_SLOTS];
    }

    /// Executes a load of the word at `v`; the clock advances to
    /// completion (single-issue, blocking loads).
    #[inline]
    pub fn load(&mut self, v: VAddr) {
        if self.mshr > 1 {
            self.make_mshr_slot();
        }
        let p = self.translate_fast(v);
        let span = self.kernel.tlb_span(v.page_number());
        let start = self.now;
        let penalties = self.ms.stats().tlb_penalties;
        let done = self.ms.load(v, p, span, start);
        if self.mshr > 1 && done > start + self.overlap_threshold {
            // A miss beyond the L2: issue it and keep going (non-blocking
            // loads); the data's consumer is assumed far enough away.
            self.inflight.push_back(done);
            self.now = start + 1;
        } else {
            self.now = done;
        }
        self.instructions += 1;
        if self.promote_threshold > 0 && self.ms.stats().tlb_penalties != penalties {
            self.consider_promotion(v);
        }
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                at: start,
                kind: impulse_types::AccessKind::Load,
                vaddr: v,
                paddr: p,
                latency: self.now - start,
            });
        }
        if let Some(rec) = &mut self.recorder {
            rec.rec_load(v.raw());
        }
    }

    /// Executes a store to the word at `v`.
    #[inline]
    pub fn store(&mut self, v: VAddr) {
        let p = self.translate_fast(v);
        let span = self.kernel.tlb_span(v.page_number());
        let start = self.now;
        self.now = self.ms.store(v, p, span, start);
        self.instructions += 1;
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                at: start,
                kind: impulse_types::AccessKind::Store,
                vaddr: v,
                paddr: p,
                latency: self.now - start,
            });
        }
        if let Some(rec) = &mut self.recorder {
            rec.rec_store(v.raw());
        }
    }

    /// Like [`Machine::load`], but surfaces translation faults as typed
    /// errors instead of panicking — the entry point for workloads that
    /// may race a revocation (a receiver streaming through a shared
    /// alias whose owner revokes the grant mid-gather). On success it is
    /// cycle-exact with `load`; on a fault the access traps into the
    /// kernel (trap cost charged, failure counted) and the workload
    /// keeps running — no stale data, no panic, no hang.
    ///
    /// # Errors
    ///
    /// Returns the kernel's fault classification — notably
    /// [`OsError::RevokedCapability`] for an access through a revoked
    /// alias.
    pub fn try_load(&mut self, v: VAddr) -> Result<(), OsError> {
        // Consult the kernel, not the xlat memo: revocations invalidate
        // the memo, so a revoked page can never be served from it, and
        // the fault must carry the kernel's typed classification.
        match self.kernel.translate(v) {
            Ok(_) => {
                self.load(v);
                Ok(())
            }
            Err(e) => {
                if let Some(rec) = &mut self.recorder {
                    rec.poison("try_load faulted: fault timing is not replayable");
                }
                Err(self.fail_syscall(e))
            }
        }
    }

    /// Executes `n` non-memory instructions (1 cycle each on the
    /// single-issue pipeline).
    #[inline]
    pub fn compute(&mut self, n: u64) {
        self.now += n;
        self.instructions += n;
        if let Some(rec) = &mut self.recorder {
            rec.rec_compute(n);
        }
    }

    /// Online promotion check after a TLB miss. Calls the `_inner`
    /// syscall: a promotion is a side effect of the load that triggered
    /// it, not a workload operation — a replay of the load stream
    /// re-triggers it identically, so it must not be recorded.
    fn consider_promotion(&mut self, v: VAddr) {
        if let Some(region) = self.kernel.note_tlb_miss(v, self.promote_threshold) {
            // Best effort: descriptor exhaustion just skips the promotion.
            let _ = self.sys_superpage_inner(region);
        }
    }

    /// Translates without timing (for assertions and tests).
    ///
    /// # Panics
    ///
    /// Panics on an unmapped address — a workload touching memory it
    /// never mapped is a simulated segfault, not a recoverable error.
    pub fn translate(&self, v: VAddr) -> PAddr {
        self.kernel
            .translate(v)
            .unwrap_or_else(|e| panic!("segfault: access to {v:?}: {e}"))
    }

    /// Programs a stream buffer with an explicit stride starting at the
    /// physical address of `v` (McKee-style software-declared vector
    /// access; no-op unless stream buffers are configured). The stream
    /// follows *physical* addresses, so it breaks at page boundaries —
    /// callers re-program per page, which is exactly the limitation the
    /// paper contrasts Impulse against.
    pub fn program_stream(&mut self, v: VAddr, stride: i64) {
        let p = self.translate_fast(v);
        self.now += 1; // one instruction to arm the stream
        self.ms.program_stream(p, stride, self.now);
        if let Some(rec) = &mut self.recorder {
            rec.program_stream(v.raw(), stride);
        }
    }

    // ---- OS entry points ---------------------------------------------

    fn charge_syscall(&mut self, pages: u64) {
        self.drain_loads();
        let costs = self.kernel.config().costs;
        let cost = costs.t_trap + pages * costs.t_per_page;
        self.now += cost;
        self.syscall_cycles += cost;
        self.invalidate_xlat();
    }

    /// A failed system call still traps into the kernel and back: charge
    /// the trap cost, count the failure, and surface the typed error to
    /// the workload, which keeps running un-remapped.
    fn fail_syscall(&mut self, e: OsError) -> OsError {
        self.drain_loads();
        let cost = self.kernel.config().costs.t_trap;
        self.now += cost;
        self.syscall_cycles += cost;
        self.syscall_failures += 1;
        e
    }

    /// System calls that returned a typed error this epoch (the machine
    /// keeps running; each failure still paid the trap cost).
    pub fn syscall_failures(&self) -> u64 {
        self.syscall_failures
    }

    /// Allocates and maps an ordinary data region.
    ///
    /// # Errors
    ///
    /// Propagates kernel allocation failures.
    pub fn alloc_region(&mut self, bytes: u64, align: u64) -> Result<VRange, OsError> {
        let res = self.alloc_region_inner(bytes, align);
        if let Some(rec) = &mut self.recorder {
            rec.alloc(bytes, align, &res);
        }
        res
    }

    fn alloc_region_inner(&mut self, bytes: u64, align: u64) -> Result<VRange, OsError> {
        let r = self
            .kernel
            .alloc_region(bytes, align)
            .map_err(|e| self.fail_syscall(e))?;
        self.charge_syscall(r.page_count());
        Ok(r)
    }

    /// Allocates a region constrained to the given L2 page colors — the
    /// copying-world tool the paper contrasts with Impulse recoloring.
    ///
    /// # Errors
    ///
    /// Propagates kernel allocation failures.
    pub fn alloc_region_colored(
        &mut self,
        bytes: u64,
        align: u64,
        colors: &[u64],
    ) -> Result<VRange, OsError> {
        let res = self.alloc_region_colored_inner(bytes, align, colors);
        if let Some(rec) = &mut self.recorder {
            rec.alloc_colored(bytes, align, colors, &res);
        }
        res
    }

    fn alloc_region_colored_inner(
        &mut self,
        bytes: u64,
        align: u64,
        colors: &[u64],
    ) -> Result<VRange, OsError> {
        let r = self
            .kernel
            .alloc_region_colored(bytes, align, colors)
            .map_err(|e| self.fail_syscall(e))?;
        self.charge_syscall(r.page_count());
        Ok(r)
    }

    /// Flushes a virtual range from the caches (writes back dirty lines),
    /// charging the per-line flush cost.
    pub fn flush_region(&mut self, r: VRange) {
        self.flush_region_inner(r);
        if let Some(rec) = &mut self.recorder {
            rec.flush_region(r);
        }
    }

    /// Flush body shared with the `sys_*` calls that flush internally —
    /// those flushes are part of the syscall's recorded effect, so only
    /// the top-level public entry records.
    fn flush_region_inner(&mut self, r: VRange) {
        self.drain_loads();
        let costs = self.kernel.config().costs;
        let line = self.ms.l1().config().line;
        let mut flushed = 0;
        for v in r.blocks(line) {
            if let Some(p) = self.kernel.aspace().try_translate(v) {
                self.ms.flush_line(v, p, self.now);
                flushed += 1;
            }
        }
        self.now += flushed * costs.t_per_flush_line;
        self.syscall_cycles += flushed * costs.t_per_flush_line;
    }

    /// Purges a virtual range (invalidates without writeback) — used for
    /// remapped input tiles whose cached copies are clean.
    pub fn purge_region(&mut self, r: VRange) {
        if let Some(rec) = &mut self.recorder {
            rec.purge_region(r);
        }
        let costs = self.kernel.config().costs;
        let line = self.ms.l1().config().line;
        let mut purged = 0;
        for v in r.blocks(line) {
            if let Some(p) = self.kernel.aspace().try_translate(v) {
                self.ms.purge_line(v, p);
                purged += 1;
            }
        }
        self.now += purged * costs.t_per_flush_line;
        self.syscall_cycles += purged * costs.t_per_flush_line;
    }

    /// System call: scatter/gather remap (see
    /// [`Kernel::remap_gather`]). Flushes the target so the controller
    /// gathers fresh data.
    ///
    /// # Errors
    ///
    /// Propagates kernel/controller errors.
    pub fn sys_remap_gather(
        &mut self,
        target: VRange,
        elem_size: u64,
        indices: Arc<Vec<u64>>,
        index_region: VRange,
        index_bytes: u64,
    ) -> Result<RemapGrant, OsError> {
        let res = self.sys_remap_gather_inner(
            target,
            elem_size,
            indices.clone(),
            index_region,
            index_bytes,
        );
        if let Some(rec) = &mut self.recorder {
            rec.remap_gather(
                target,
                elem_size,
                &indices,
                index_region,
                index_bytes,
                None,
                &res,
            );
        }
        res
    }

    fn sys_remap_gather_inner(
        &mut self,
        target: VRange,
        elem_size: u64,
        indices: Arc<Vec<u64>>,
        index_region: VRange,
        index_bytes: u64,
    ) -> Result<RemapGrant, OsError> {
        let grant = self
            .kernel
            .remap_gather(
                self.ms.mc_mut(),
                target,
                elem_size,
                indices,
                index_region,
                index_bytes,
            )
            .map_err(|e| self.fail_syscall(e))?;
        self.charge_syscall(grant.pages_installed);
        self.flush_region_inner(target);
        Ok(grant)
    }

    /// Like [`Machine::sys_remap_gather`], but places the alias so that
    /// streaming it alongside `partner` (e.g. CG's `DATA` array, consumed
    /// in lock-step with `x'`) cannot conflict in the virtually-indexed
    /// L1: the alias starts half an L1 away from `partner` modulo the L1
    /// size. This is the "appropriate alignment and offset
    /// characteristics" of the paper's step 1.
    ///
    /// # Errors
    ///
    /// Propagates kernel/controller errors.
    pub fn sys_remap_gather_interleaved(
        &mut self,
        target: VRange,
        elem_size: u64,
        indices: Arc<Vec<u64>>,
        index_region: VRange,
        index_bytes: u64,
        partner: VAddr,
    ) -> Result<RemapGrant, OsError> {
        let res = self.sys_remap_gather_interleaved_inner(
            target,
            elem_size,
            indices.clone(),
            index_region,
            index_bytes,
            partner,
        );
        if let Some(rec) = &mut self.recorder {
            rec.remap_gather(
                target,
                elem_size,
                &indices,
                index_region,
                index_bytes,
                Some(partner),
                &res,
            );
        }
        res
    }

    fn sys_remap_gather_interleaved_inner(
        &mut self,
        target: VRange,
        elem_size: u64,
        indices: Arc<Vec<u64>>,
        index_region: VRange,
        index_bytes: u64,
        partner: VAddr,
    ) -> Result<RemapGrant, OsError> {
        let l1 = self.ms.l1().config().size;
        let phase = ((partner.raw() + l1 / 2) % l1) & !(PAGE_SIZE - 1);
        let grant = self
            .kernel
            .remap_gather_aligned(
                self.ms.mc_mut(),
                target,
                elem_size,
                indices,
                index_region,
                index_bytes,
                l1,
                phase,
            )
            .map_err(|e| self.fail_syscall(e))?;
        self.charge_syscall(grant.pages_installed);
        self.flush_region_inner(target);
        Ok(grant)
    }

    /// System call: strided remap (see [`Kernel::remap_strided`]).
    ///
    /// # Errors
    ///
    /// Propagates kernel/controller errors.
    pub fn sys_remap_strided(
        &mut self,
        base: VAddr,
        object_size: u64,
        stride: u64,
        count: u64,
        alias_align: u64,
    ) -> Result<RemapGrant, OsError> {
        let res = self.sys_remap_strided_inner(base, object_size, stride, count, alias_align);
        if let Some(rec) = &mut self.recorder {
            rec.remap_strided(base, object_size, stride, count, alias_align, &res);
        }
        res
    }

    fn sys_remap_strided_inner(
        &mut self,
        base: VAddr,
        object_size: u64,
        stride: u64,
        count: u64,
        alias_align: u64,
    ) -> Result<RemapGrant, OsError> {
        let grant = self
            .kernel
            .remap_strided(
                self.ms.mc_mut(),
                base,
                object_size,
                stride,
                count,
                alias_align,
            )
            .map_err(|e| self.fail_syscall(e))?;
        self.charge_syscall(grant.pages_installed);
        // Only the strided objects themselves need flushing — not the
        // (possibly huge) span between them.
        for i in 0..count {
            self.flush_region_inner(VRange::new(base.add(i * stride), object_size));
        }
        Ok(grant)
    }

    /// System call: retarget a strided alias at a new base (the per-tile
    /// remap of Section 3.2). The caller is responsible for the
    /// purge/flush protocol on the tiles themselves.
    ///
    /// # Errors
    ///
    /// Propagates kernel/controller errors.
    pub fn sys_retarget_strided(
        &mut self,
        grant: &mut RemapGrant,
        new_base: VAddr,
        object_size: u64,
        stride: u64,
        count: u64,
    ) -> Result<(), OsError> {
        let res = self.sys_retarget_strided_inner(grant, new_base, object_size, stride, count);
        if let Some(rec) = &mut self.recorder {
            rec.retarget_strided(grant, new_base, object_size, stride, count, &res);
        }
        res
    }

    fn sys_retarget_strided_inner(
        &mut self,
        grant: &mut RemapGrant,
        new_base: VAddr,
        object_size: u64,
        stride: u64,
        count: u64,
    ) -> Result<(), OsError> {
        let pages = self
            .kernel
            .retarget_strided(
                self.ms.mc_mut(),
                grant,
                new_base,
                object_size,
                stride,
                count,
            )
            .map_err(|e| self.fail_syscall(e))?;
        self.charge_syscall(pages);
        Ok(())
    }

    /// System call: no-copy page recoloring (see
    /// [`Kernel::remap_recolor`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use impulse_sim::{Machine, SystemConfig};
    ///
    /// let mut m = Machine::new(&SystemConfig::paint_small());
    /// let x = m.alloc_region(64 * 1024, 8)?;
    /// // Pin x to the first half of the physically-indexed L2.
    /// let colors: Vec<u64> = (0..16).collect();
    /// let grant = m.sys_recolor(x, &colors)?;
    /// m.load(grant.alias.start()); // same data, new cache placement
    /// # Ok::<(), impulse_os::OsError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates kernel/controller errors.
    pub fn sys_recolor(&mut self, target: VRange, colors: &[u64]) -> Result<RemapGrant, OsError> {
        let res = self.sys_recolor_inner(target, colors);
        if let Some(rec) = &mut self.recorder {
            rec.recolor(target, colors, &res);
        }
        res
    }

    fn sys_recolor_inner(&mut self, target: VRange, colors: &[u64]) -> Result<RemapGrant, OsError> {
        let grant = self
            .kernel
            .remap_recolor(self.ms.mc_mut(), target, colors)
            .map_err(|e| self.fail_syscall(e))?;
        self.charge_syscall(grant.pages_installed);
        self.flush_region_inner(target);
        Ok(grant)
    }

    /// System call: build a superpage over `target` (see
    /// [`Kernel::build_superpage`]). Flushes the range under its *old*
    /// physical tags and shoots down its TLB entries before the mapping
    /// changes.
    ///
    /// # Errors
    ///
    /// Propagates kernel/controller errors.
    pub fn sys_superpage(&mut self, target: VRange) -> Result<RemapGrant, OsError> {
        let res = self.sys_superpage_inner(target);
        if let Some(rec) = &mut self.recorder {
            rec.superpage(target, &res);
        }
        res
    }

    /// Superpage body shared with [`Machine::consider_promotion`] (online
    /// promotions are replay-derived, not recorded).
    fn sys_superpage_inner(&mut self, target: VRange) -> Result<RemapGrant, OsError> {
        // The flush must happen before the remap: cached lines are tagged
        // with the original physical addresses.
        self.flush_region_inner(target);
        for page in target.blocks(PAGE_SIZE) {
            self.ms.tlb_shootdown(page);
        }
        let grant = self
            .kernel
            .build_superpage(self.ms.mc_mut(), target)
            .map_err(|e| self.fail_syscall(e))?;
        self.charge_syscall(grant.pages_installed);
        Ok(grant)
    }

    /// Spawns a new (empty) process.
    pub fn sys_spawn(&mut self) -> Pid {
        let pid = self.kernel.spawn();
        self.charge_syscall(0);
        if let Some(rec) = &mut self.recorder {
            rec.spawn(pid);
        }
        pid
    }

    /// Switches to another process: charges the context-switch cost and
    /// flushes the TLB (the model has no address-space identifiers). The
    /// physically-tagged caches need no flush.
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist.
    pub fn sys_switch(&mut self, pid: Pid) -> Result<(), OsError> {
        let res = self.sys_switch_inner(pid);
        if let Some(rec) = &mut self.recorder {
            rec.switch(pid, &res);
        }
        res
    }

    fn sys_switch_inner(&mut self, pid: Pid) -> Result<(), OsError> {
        self.kernel.switch(pid).map_err(|e| self.fail_syscall(e))?;
        self.ms.tlb_flush();
        self.charge_syscall(1);
        Ok(())
    }

    /// Shares a grant's shadow region into another process (no-copy IPC,
    /// Section 6): the receiver gets its own alias onto the same
    /// controller descriptor.
    ///
    /// # Errors
    ///
    /// Fails unless the calling process owns the grant.
    pub fn sys_share(&mut self, grant: &RemapGrant, with: Pid) -> Result<VRange, OsError> {
        self.sys_share_cap(grant, with).map(|(alias, _)| alias)
    }

    /// Like [`Machine::sys_share`], but also returns the derived
    /// capability handle protecting the receiver's alias — for explicit
    /// handoff bookkeeping (a fork-style parent handing its buffers to a
    /// child). Replays as a plain share: the capability handle is
    /// deterministic kernel state, not a workload input.
    ///
    /// # Errors
    ///
    /// Fails unless the calling process owns the grant.
    pub fn sys_share_cap(
        &mut self,
        grant: &RemapGrant,
        with: Pid,
    ) -> Result<(VRange, impulse_os::CapId), OsError> {
        let res = self.sys_share_cap_inner(grant, with);
        if let Some(rec) = &mut self.recorder {
            rec.share(grant, with, &res.as_ref().map(|&(alias, _)| alias));
        }
        res
    }

    fn sys_share_cap_inner(
        &mut self,
        grant: &RemapGrant,
        with: Pid,
    ) -> Result<(VRange, impulse_os::CapId), OsError> {
        let (alias, cap) = self
            .kernel
            .share_remap_cap(grant, with)
            .map_err(|e| self.fail_syscall(e))?;
        self.charge_syscall(alias.page_count());
        Ok((alias, cap))
    }

    /// Releases a remap grant. Flushes the alias from the caches first
    /// (its shadow addresses will no longer be served) and shoots down its
    /// TLB entries; superpage grants have their original mappings
    /// restored by the kernel.
    ///
    /// # Errors
    ///
    /// Propagates kernel/controller errors.
    pub fn sys_release(&mut self, grant: &RemapGrant) -> Result<(), OsError> {
        let res = self.sys_revoke_inner(grant);
        if let Some(rec) = &mut self.recorder {
            rec.release(grant, &res);
        }
        res.map(|_| ())
    }

    /// Explicitly revokes a grant's capability, transitively tearing
    /// down every receiver alias derived from it (see
    /// [`Kernel::revoke_remap`]). Identical kernel effect to
    /// [`Machine::sys_release`], but returns the [`RevokeOutcome`] —
    /// how many capabilities died, how many pages were unmapped across
    /// all address spaces, and the cycles the revocation walk cost.
    ///
    /// # Errors
    ///
    /// Propagates kernel/controller errors; a second revocation of the
    /// same grant yields [`OsError::RevokedCapability`].
    pub fn sys_revoke(&mut self, grant: &RemapGrant) -> Result<RevokeOutcome, OsError> {
        let res = self.sys_revoke_inner(grant);
        if let Some(rec) = &mut self.recorder {
            // Replay-wise a revoke *is* a release: same kernel effect,
            // same charges, so the existing release op replays it.
            rec.release(grant, &res);
        }
        res
    }

    fn sys_revoke_inner(&mut self, grant: &RemapGrant) -> Result<RevokeOutcome, OsError> {
        self.flush_region_inner(grant.alias);
        for page in grant.alias.blocks(PAGE_SIZE) {
            self.ms.tlb_shootdown(page);
        }
        let out = self
            .kernel
            .revoke_remap(self.ms.mc_mut(), grant)
            .map_err(|e| self.fail_syscall(e))?;
        // Charge the per-page download cost on every page the kernel
        // actually touched — receiver aliases included (superpage
        // restores re-map the owner range, hence the max).
        self.charge_syscall(grant.alias.page_count().max(out.pages_unmapped));
        // The revocation walk itself is kernel work on top of the trap.
        self.now += out.cycles;
        self.syscall_cycles += out.cycles;
        Ok(out)
    }

    // ---- measurement ---------------------------------------------------

    /// Resets all statistics and starts a new measurement epoch (cache and
    /// DRAM contents survive, enabling warm-up then measure). When a
    /// replay capture is being recorded, the post-reset machine image is
    /// embedded in the capture so replays can fast-forward over warm-up.
    pub fn reset_stats(&mut self) {
        self.drain_loads();
        self.epoch = self.now;
        self.syscall_cycles = 0;
        self.syscall_failures = 0;
        self.instructions = 0;
        self.ms.reset_stats();
        self.ms.mc_mut().reset_stats();
        // Take the recorder out while snapshotting: the image must not
        // (and cannot) include the recorder itself.
        if let Some(mut rec) = self.recorder.take() {
            let snap = self.snapshot(rec.cfg());
            rec.reset_stats(snap);
            self.recorder = Some(rec);
        }
    }

    /// Builds a report over the current measurement epoch. Outstanding
    /// overlapped loads are charged to the epoch (max completion time).
    pub fn report(&self, name: impl Into<String>) -> Report {
        let now = self
            .inflight
            .back()
            .map_or(self.now, |&last| self.now.max(last));
        Report::collect(
            name.into(),
            now - self.epoch,
            self.instructions,
            self.syscall_cycles,
            &self.ms,
        )
    }

    /// Every metric in the machine, pulled into one registry: the memory
    /// hierarchy's namespaces (see [`MemorySystem::observe_all`]) plus the
    /// machine-level `machine.*` counters for the current epoch.
    pub fn metrics(&self) -> impulse_obs::MetricsRegistry {
        let mut m = self.ms.observe_all();
        m.counter("machine.cycles", self.now - self.epoch);
        m.counter("machine.instructions", self.instructions);
        m.counter("machine.syscall_cycles", self.syscall_cycles);
        m.counter("machine.syscall_failures", self.syscall_failures);
        m
    }

    // ---- checkpoint/restore ---------------------------------------------

    /// The configuration fingerprint stamped into snapshot headers — the
    /// shared [`impulse_types::ident`] digest of the full `SystemConfig`,
    /// so an image can never be restored into a machine with different
    /// geometry or timing, and so every keyed artifact (snapshots, replay
    /// captures, the experiment server's result cache) derives identity
    /// from the same hash discipline.
    pub fn config_fingerprint(cfg: &SystemConfig) -> u64 {
        digest64(format!("{cfg:?}").as_bytes())
    }

    /// Serializes the complete machine state into a versioned, checksummed
    /// `impulse-snap-v1` image: the CPU clock and counters, every cache
    /// and TLB, the bus, the memory controller (DRAM, page table, shadow
    /// descriptors, prefetch buffers), the OS, and any active fault-plan
    /// RNG streams. An attached [`Tracer`] is *not* captured — reattach
    /// one after [`Machine::restore`] if tracing should continue.
    ///
    /// The golden invariant: `run(N); snapshot; restore; run(M)` is
    /// bit-identical to `run(N + M)` in every statistic and cycle count.
    pub fn snapshot(&self, cfg: &SystemConfig) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.tag(TAG_MACH);
        w.u64(self.now);
        w.u64(self.epoch);
        w.u64(self.syscall_cycles);
        w.u64(self.syscall_failures);
        w.u64(self.instructions);
        w.u64(self.promote_threshold);
        w.usize(self.inflight.len());
        for &c in &self.inflight {
            w.u64(c);
        }
        self.kernel.snap_save(&mut w);
        self.ms.snap_save(&mut w);
        seal(Self::config_fingerprint(cfg), w.finish())
    }

    /// Rebuilds a machine from a snapshot image taken under the same
    /// configuration.
    ///
    /// The translation memo is reset (it refills on demand) and no tracer
    /// is attached; everything architecturally or statistically visible
    /// resumes bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the image is corrupt, truncated, from a
    /// different snapshot version, or was taken under a different
    /// configuration ([`SnapError::ConfigMismatch`]).
    pub fn restore(cfg: &SystemConfig, image: &[u8]) -> Result<Self, SnapError> {
        let payload = open(image, Self::config_fingerprint(cfg))?;
        let mut machine = Self::new(cfg);
        let mut r = SnapReader::new(payload);
        r.tag(TAG_MACH)?;
        machine.now = r.u64()?;
        machine.epoch = r.u64()?;
        machine.syscall_cycles = r.u64()?;
        machine.syscall_failures = r.u64()?;
        machine.instructions = r.u64()?;
        machine.promote_threshold = r.u64()?;
        let n = r.usize()?;
        if n > machine.mshr {
            return Err(SnapError::Geometry("in-flight miss count exceeds MSHRs"));
        }
        machine.inflight.clear();
        for _ in 0..n {
            let c = r.u64()?;
            machine.inflight.push_back(c);
        }
        machine.kernel.snap_load(&mut r)?;
        machine.ms.snap_load(&mut r)?;
        r.finish()?;
        Ok(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(&SystemConfig::paint_small())
    }

    #[test]
    fn clock_advances_per_operation() {
        let mut m = machine();
        let r = m.alloc_region(4096, 8).unwrap();
        let t0 = m.now();
        m.compute(5);
        assert_eq!(m.now(), t0 + 5);
        m.load(r.start());
        assert!(m.now() > t0 + 5);
        assert_eq!(m.instructions(), 6);
    }

    #[test]
    fn repeated_loads_hit_l1() {
        let mut m = machine();
        let r = m.alloc_region(4096, 8).unwrap();
        m.load(r.start());
        let t = m.now();
        m.load(r.start());
        assert_eq!(m.now() - t, 1);
    }

    #[test]
    fn syscalls_cost_cycles() {
        let mut m = machine();
        let t0 = m.now();
        let _ = m.alloc_region(1 << 16, 8).unwrap();
        assert!(m.now() > t0, "allocation trap must cost time");
    }

    #[test]
    fn gather_alias_is_loadable() {
        let mut m = machine();
        let x = m.alloc_region(1024 * 8, 8).unwrap();
        let colv = m.alloc_region(512 * 4, 4).unwrap();
        let indices = Arc::new((0..512u64).map(|i| (i * 13) % 1024).collect::<Vec<_>>());
        let g = m
            .sys_remap_gather(x, 8, indices, colv, 4)
            .expect("gather remap");
        // Stream the gathered alias.
        for k in 0..512u64 {
            m.load(g.alias.start().add(k * 8));
        }
        let rep = m.report("gather");
        assert_eq!(rep.mem.loads, 512);
        assert!(rep.mem.l1_ratio() > 0.7, "gathered data is dense in L1");
        assert!(m.memory().mc().desc_stats().gathers > 0);
    }

    #[test]
    fn recolored_alias_reads_same_frames() {
        let mut m = machine();
        let x = m.alloc_region(8 * PAGE_SIZE, 8).unwrap();
        let g = m.sys_recolor(x, &[0, 1]).unwrap();
        // Both views are readable; the alias sits in shadow space.
        m.load(x.start());
        m.load(g.alias.start());
        assert!(m.memory().mc().is_shadow(m.translate(g.alias.start())));
    }

    #[test]
    fn superpage_reduces_tlb_penalties() {
        let run = |superpage: bool| {
            let mut m = machine();
            let pages = 64;
            let r = m
                .alloc_region(pages * PAGE_SIZE, pages * PAGE_SIZE)
                .unwrap();
            if superpage {
                m.sys_superpage(r).unwrap();
            }
            m.reset_stats();
            // Touch every page, twice around, exceeding nothing but
            // demonstrating reach.
            for round in 0..2u64 {
                for i in 0..pages {
                    m.load(r.start().add(i * PAGE_SIZE + round * 8));
                }
            }
            m.report("tlb").mem.tlb_penalties
        };
        let base = run(false);
        let sp = run(true);
        assert!(sp < base, "superpage TLB penalties {sp} !< {base}");
        assert_eq!(sp, 1, "one penalty to load the superpage entry");
    }

    #[test]
    fn report_epoch_resets() {
        let mut m = machine();
        let r = m.alloc_region(4096, 8).unwrap();
        m.load(r.start());
        m.reset_stats();
        let rep = m.report("fresh");
        assert_eq!(rep.cycles, 0);
        assert_eq!(rep.mem.loads, 0);
    }

    #[test]
    fn nonblocking_loads_overlap_misses() {
        let run = |mshr: usize| {
            let cfg = SystemConfig::paint_small().with_mshr(mshr);
            let mut m = Machine::new(&cfg);
            let r = m.alloc_region(1 << 20, 8).unwrap();
            m.reset_stats();
            // Independent strided misses: a non-blocking CPU overlaps them.
            for i in 0..2048u64 {
                m.load(r.start().add(i * 512 % (1 << 20)));
                m.compute(2);
            }
            m.report("mshr").cycles
        };
        let blocking = run(1);
        let overlapped = run(4);
        assert!(
            overlapped * 3 < blocking * 2,
            "4 MSHRs should cut at least a third: {overlapped} !<< {blocking}"
        );
        // Determinism holds in both modes.
        assert_eq!(run(4), overlapped);
    }

    #[test]
    fn nonblocking_drains_at_sync_points() {
        let cfg = SystemConfig::paint_small().with_mshr(8);
        let mut m = Machine::new(&cfg);
        let r = m.alloc_region(1 << 16, 8).unwrap();
        for i in 0..8u64 {
            m.load(r.start().add(i * 8192));
        }
        let before = m.now();
        m.flush_region(r); // sync point: all loads must retire first
        assert!(m.now() > before);
        let rep = m.report("drained");
        assert!(rep.cycles >= rep.mem.loads);
    }

    #[test]
    fn auto_promotion_builds_superpages_online() {
        use impulse_types::geom::PAGE_SIZE;
        let mut m = machine();
        let pages = 64u64;
        // Span-aligned region: promotable.
        let r = m
            .alloc_region(pages * PAGE_SIZE, pages * PAGE_SIZE)
            .unwrap();
        m.enable_auto_promotion(16);
        m.reset_stats();
        // Two sweeps: the first racks up TLB misses and triggers the
        // promotion; the second runs under one superpage entry.
        for round in 0..3u64 {
            for i in 0..pages {
                m.load(r.start().add(i * PAGE_SIZE + round * 8));
            }
        }
        // Promotion happened: the region now translates into shadow space.
        assert!(m.memory().mc().is_shadow(m.translate(r.start())));
        let (_, span) = m.kernel().tlb_span(r.start().raw() >> 12);
        assert_eq!(span, pages);
        // Far fewer penalties than three unpromoted sweeps (192).
        assert!(m.memory().stats().tlb_penalties < 64 + 16);
    }

    #[test]
    fn auto_promotion_skips_unaligned_and_small_regions() {
        use impulse_types::geom::PAGE_SIZE;
        let mut m = machine();
        let single = m.alloc_region(PAGE_SIZE, 1).unwrap();
        let unaligned = m.alloc_region(8 * PAGE_SIZE, PAGE_SIZE).unwrap();
        m.enable_auto_promotion(2);
        for _ in 0..8 {
            m.load(single.start());
            for i in 0..8 {
                m.load(unaligned.start().add(i * PAGE_SIZE));
            }
            // Churn the TLB so misses keep occurring.
            for i in 0..256u64 {
                m.load(unaligned.start().add((i % 8) * PAGE_SIZE + 8));
            }
        }
        assert!(!m.memory().mc().is_shadow(m.translate(single.start())));
        if !unaligned.start().is_aligned(8 * PAGE_SIZE) {
            assert!(!m.memory().mc().is_shadow(m.translate(unaligned.start())));
        }
    }

    #[test]
    fn tracer_records_demand_accesses() {
        let mut m = machine();
        let r = m.alloc_region(4096, 8).unwrap();
        m.attach_tracer(crate::trace::Tracer::new(8));
        m.load(r.start());
        m.store(r.start().add(8));
        m.compute(5); // not traced
        let t = m.take_tracer().unwrap();
        assert_eq!(t.events().len(), 2);
        assert!(t.events()[0].kind.is_load());
        assert!(t.events()[1].kind.is_store());
        assert!(t.events()[0].latency >= 1);
        assert_eq!(t.events()[0].vaddr, r.start());
        assert!(m.take_tracer().is_none());
    }

    /// The bus address the most recent access actually used (recorded by
    /// the tracer, i.e. downstream of the xlat memo).
    fn last_paddr(m: &mut Machine) -> PAddr {
        let t = m.take_tracer().expect("tracer attached");
        let p = t.events().last().expect("at least one access").paddr;
        m.attach_tracer(crate::trace::Tracer::new(64));
        p
    }

    #[test]
    fn xlat_memo_invalidated_by_superpage_remap_and_release() {
        let mut m = machine();
        let pages = 16u64;
        let r = m
            .alloc_region(pages * PAGE_SIZE, pages * PAGE_SIZE)
            .unwrap();
        m.attach_tracer(crate::trace::Tracer::new(64));

        m.load(r.start()); // memoize the original translation
        let original = last_paddr(&mut m);
        assert_eq!(original, m.translate(r.start()));
        assert!(!m.memory().mc().is_shadow(original));

        // Remap: the region's pages now translate into shadow space. A
        // stale memo entry would keep issuing the old bus address.
        let grant = m.sys_superpage(r).unwrap();
        m.load(r.start());
        let remapped = last_paddr(&mut m);
        assert_eq!(
            remapped,
            m.translate(r.start()),
            "memo served a stale translation"
        );
        assert!(m.memory().mc().is_shadow(remapped));
        assert_ne!(remapped, original);

        // Release: the original mappings are restored (plus a TLB
        // shootdown); again the memo must follow.
        m.sys_release(&grant).unwrap();
        m.load(r.start());
        let restored = last_paddr(&mut m);
        assert_eq!(restored, m.translate(r.start()));
        assert!(!m.memory().mc().is_shadow(restored));
    }

    #[test]
    fn xlat_memo_invalidated_by_online_promotion() {
        // The online superpage promotion fires *inside* a load loop (not
        // from an explicit user syscall), remapping pages whose
        // translations are hot in the memo. Every access after the
        // promotion must use the new shadow addresses.
        let mut m = machine();
        let pages = 64u64;
        let r = m
            .alloc_region(pages * PAGE_SIZE, pages * PAGE_SIZE)
            .unwrap();
        m.enable_auto_promotion(8);
        m.attach_tracer(crate::trace::Tracer::new(1024));
        for round in 0..3u64 {
            for i in 0..pages {
                m.load(r.start().add(i * PAGE_SIZE + round * 8));
            }
        }
        assert!(
            m.memory().mc().is_shadow(m.translate(r.start())),
            "promotion should have rebuilt the region as a superpage"
        );
        let t = m.take_tracer().unwrap();
        let last = t.events().last().unwrap();
        assert_eq!(
            last.paddr,
            m.translate(last.vaddr),
            "stale memo after promotion"
        );
        assert!(m.memory().mc().is_shadow(last.paddr));
    }

    #[test]
    fn xlat_memo_invalidated_by_process_switch() {
        let mut m = machine();
        // Both processes' bump allocators start at the same virtual base,
        // so the same VA maps to different frames in each.
        let r1 = m.alloc_region(PAGE_SIZE, 1).unwrap();
        m.load(r1.start()); // memoize p1's translation of the shared VA
        let p1 = m.translate(r1.start());

        let pid2 = m.sys_spawn();
        m.sys_switch(pid2).unwrap();
        let r2 = m.alloc_region(PAGE_SIZE, 1).unwrap();
        assert_eq!(r1.start(), r2.start(), "same VA in both address spaces");
        m.attach_tracer(crate::trace::Tracer::new(64));
        m.load(r2.start());
        let used = last_paddr(&mut m);
        assert_eq!(used, m.translate(r2.start()));
        assert_ne!(used, p1, "p2 must not read through p1's memoized frame");
    }

    #[test]
    fn failed_syscalls_charge_trap_and_count() {
        let mut m = machine();
        let x = m.alloc_region(64 * 64 * 8, 8).unwrap();
        let before = m.now();
        // Zero stride is syscall misuse: a typed error, not a panic.
        let res = m.sys_remap_strided(x.start(), 64, 0, 8, PAGE_SIZE);
        assert!(matches!(res, Err(OsError::InvalidArg(_))));
        assert_eq!(m.syscall_failures(), 1);
        let trap = m.kernel().config().costs.t_trap;
        assert_eq!(
            m.now() - before,
            trap,
            "a failed trap still costs entry/exit"
        );
        assert_eq!(
            m.metrics().counter_value("machine.syscall_failures"),
            Some(1)
        );
        // The machine keeps running: the same region remaps fine next try.
        let g = m
            .sys_remap_strided(x.start(), 64, 512, 8, PAGE_SIZE)
            .unwrap();
        m.load(g.alias.start());
        m.reset_stats();
        assert_eq!(m.syscall_failures(), 0, "epoch reset clears the counter");
    }

    #[test]
    fn revocation_mid_stream_yields_typed_errors() {
        let mut m = machine();
        let buf = m.alloc_region(4 * PAGE_SIZE, 8).unwrap();
        let grant = m.sys_recolor(buf, &[0, 1]).unwrap();
        let receiver = m.sys_spawn();
        let rx = m.sys_share(&grant, receiver).unwrap();
        m.sys_switch(receiver).unwrap();
        // The receiver starts streaming through the shared alias...
        m.try_load(rx.start()).unwrap();
        m.try_load(rx.start().add(8)).unwrap();
        // ...the owner revokes the grant mid-stream...
        m.sys_switch(Pid::INIT).unwrap();
        let out = m.sys_revoke(&grant).unwrap();
        assert!(out.caps_revoked >= 2, "root + derived receiver alias");
        assert!(out.cycles > 0);
        // ...and every subsequent receiver access faults with the typed
        // revocation error: no stale data, no panic, no hang.
        m.sys_switch(receiver).unwrap();
        let failures = m.syscall_failures();
        for i in 0..rx.page_count() {
            match m.try_load(rx.start().add(i * PAGE_SIZE)) {
                Err(OsError::RevokedCapability { .. }) => {}
                other => panic!("expected RevokedCapability, got {other:?}"),
            }
        }
        assert_eq!(m.syscall_failures(), failures + rx.page_count());
        // A second revocation is itself a typed error.
        m.sys_switch(Pid::INIT).unwrap();
        assert!(matches!(
            m.sys_revoke(&grant),
            Err(OsError::RevokedCapability { .. })
        ));
    }

    #[test]
    fn release_then_reuse_descriptor() {
        let mut m = machine();
        let x = m.alloc_region(PAGE_SIZE, 8).unwrap();
        for _ in 0..20 {
            let g = m.sys_recolor(x, &[0]).unwrap();
            m.load(g.alias.start());
            m.sys_release(&g).unwrap();
        }
    }
}
