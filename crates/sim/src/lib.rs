//! Full-system simulator for the Impulse memory architecture.
//!
//! Assembles the substrate crates into the machine the paper evaluates on
//! (the Paint simulator environment): a single-issue CPU, a virtually-
//! indexed L1, a physically-indexed L2, a fully-associative NRU TLB, a
//! Runway-like system bus, and the Impulse memory controller over a
//! multi-bank page-mode DRAM.
//!
//! * [`config`] — [`SystemConfig`], with the [`SystemConfig::paint`]
//!   preset matching the paper's Section 4 parameters.
//! * [`bus`] — the split-transaction bus occupancy model.
//! * [`system`] — the memory hierarchy datapath and demand statistics.
//! * [`machine`] — the CPU + OS harness that workloads run against.
//! * [`report`] — paper-style measurement tables.
//! * [`replay`] — trace-driven replay: capture a workload's operation
//!   stream once, re-evaluate its timing in folded batches, bit-exactly.
//! * [`trace`] — bounded access-trace capture for debugging remappings.
//!
//! # Examples
//!
//! ```
//! use impulse_sim::{Machine, SystemConfig};
//!
//! let mut m = Machine::new(&SystemConfig::paint_small());
//! let data = m.alloc_region(64 * 1024, 8)?;
//! for i in 0..1024 {
//!     m.load(data.start().add(i * 8));
//!     m.compute(2);
//! }
//! let report = m.report("stream");
//! assert_eq!(report.mem.loads, 1024);
//! # Ok::<(), impulse_os::OsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod config;
pub mod machine;
pub mod replay;
pub mod report;
pub mod system;
pub mod trace;

pub use bus::{Bus, BusConfig, BusStats};
pub use config::SystemConfig;
pub use machine::Machine;
pub use replay::{replay_into, replayable, ReplayCapture, ReplayError, ReplayOutcome};
pub use report::Report;
pub use system::{MemStats, MemorySystem};
pub use trace::{TraceEvent, Tracer};
