//! Full-system configuration, with the Paint preset from the paper.

use impulse_cache::{CacheConfig, StreamConfig, TlbConfig};
use impulse_core::{McConfig, TierConfig};
use impulse_dram::DramConfig;
use impulse_fault::FaultConfig;
use impulse_os::KernelConfig;
use impulse_types::{Cycle, TierPolicy};

use crate::bus::BusConfig;

/// Everything needed to assemble a simulated machine.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// L1 data cache geometry/policy.
    pub l1: CacheConfig,
    /// L2 data cache geometry/policy.
    pub l2: CacheConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// System bus timing.
    pub bus: BusConfig,
    /// Memory controller configuration (prefetch toggles live here).
    pub mc: McConfig,
    /// DRAM array configuration.
    pub dram: DramConfig,
    /// OS configuration.
    pub kernel: KernelConfig,
    /// L1 hit latency (cycles).
    pub t_l1_hit: Cycle,
    /// L2 hit latency, total from issue (cycles).
    pub t_l2_hit: Cycle,
    /// TLB miss (table walk) penalty (cycles).
    pub t_tlb_miss: Cycle,
    /// Hardware next-line prefetch into the L1, as in the HP PA 7200.
    pub l1_prefetch: bool,
    /// Outstanding load misses the CPU tolerates before stalling (miss
    /// status holding registers). 1 = fully blocking loads (the
    /// conservative default); the Paint L1 was non-blocking, so values
    /// of 2–4 approximate its hit-under-miss/miss-under-miss overlap.
    pub mshr: usize,
    /// Optional CPU-side stream buffers (the Jouppi/McKee related-work
    /// baseline of the paper's Section 5). `None` = absent.
    pub stream: Option<StreamConfig>,
    /// Fault-injection schedule (default: fault-free, zero overhead).
    pub faults: FaultConfig,
    /// Hybrid DRAM/SCM tier configuration (default: no tier — plain
    /// DRAM, zero overhead). Use [`SystemConfig::with_tier`] to enable.
    pub tier: TierConfig,
}

impl SystemConfig {
    /// The paper's simulation environment (Section 4): 120 MHz single
    /// issue, 32 KB direct-mapped VI/PT L1 with 32 B lines (1-cycle hit),
    /// 256 KB 2-way PI/PT L2 with 128 B lines (7-cycle hit), ~40-cycle
    /// memory access, fully-associative NRU TLB. 1 GB installed DRAM.
    pub fn paint() -> Self {
        Self::paint_with_capacity(1 << 30)
    }

    /// Paint configuration with a smaller installed DRAM — identical
    /// timing, lighter for tests and quick runs.
    pub fn paint_small() -> Self {
        Self::paint_with_capacity(1 << 26) // 64 MB
    }

    fn paint_with_capacity(capacity: u64) -> Self {
        let dram = DramConfig {
            banks: 16,
            row_bytes: 2048,
            t_row_hit: 8,
            t_row_miss: 18,
            bus_bytes_per_cycle: 16,
            t_bus_min: 1,
            capacity,
        };
        let kernel = KernelConfig {
            dram_capacity: capacity,
            reserved_top: 1 << 20,
            // A long-running machine's frame pool is fragmented; physical
            // page placement is effectively random. This is the baseline
            // the paper's recoloring optimization assumes (conventional
            // systems "do not typically provide mechanisms for managing
            // physical layout").
            policy: impulse_os::AllocPolicy::Random(0x1999),
            ..KernelConfig::default()
        };
        Self {
            l1: CacheConfig::paint_l1(),
            l2: CacheConfig::paint_l2(),
            tlb: TlbConfig::default(),
            bus: BusConfig::default(),
            mc: McConfig::default(),
            dram,
            kernel,
            t_l1_hit: 1,
            t_l2_hit: 7,
            t_tlb_miss: 30,
            l1_prefetch: false,
            mshr: 1,
            stream: None,
            faults: FaultConfig::none(),
            tier: TierConfig::default(),
        }
    }

    /// Returns this configuration with the prefetch switches set: `mc` =
    /// controller prefetching (both the 2 KB SRAM and the shadow
    /// descriptor buffers), `l1` = cache next-line prefetching. These are
    /// the two knobs the paper's tables sweep.
    #[must_use]
    pub fn with_prefetch(mut self, mc: bool, l1: bool) -> Self {
        self.mc.prefetch_nonshadow = mc;
        self.mc.prefetch_shadow = mc;
        self.l1_prefetch = l1;
        self
    }

    /// Returns this configuration with CPU-side stream buffers attached
    /// (the Section 5 related-work baseline).
    #[must_use]
    pub fn with_stream_buffers(mut self) -> Self {
        self.stream = Some(StreamConfig {
            line: self.l1.line,
            ..StreamConfig::default()
        });
        self
    }

    /// Returns this configuration with `mshr` outstanding load misses
    /// (non-blocking loads).
    #[must_use]
    pub fn with_mshr(mut self, mshr: usize) -> Self {
        assert!(mshr >= 1, "at least one outstanding load is required");
        self.mshr = mshr;
        self
    }

    /// Returns this configuration with a fault-injection schedule
    /// attached; the machine distributes per-site injectors at build
    /// time.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Returns this configuration with a hybrid DRAM/SCM tier attached.
    ///
    /// * [`TierPolicy::Flat`] — the SCM sits above DRAM in one
    ///   address-partitioned space, sized to match the installed DRAM, so
    ///   the visible capacity doubles.
    /// * [`TierPolicy::Cache`] — the SCM takes over the full installed
    ///   capacity and the DRAM shrinks to 1/16 of it, acting as a
    ///   tag-checked dirty-writeback cache in front; the visible capacity
    ///   is the SCM's.
    /// * [`TierPolicy::None`] — removes any tier.
    ///
    /// The kernel's notion of installed memory is kept consistent with
    /// the tier-visible capacity in every case.
    #[must_use]
    pub fn with_tier(mut self, policy: TierPolicy) -> Self {
        self.tier = TierConfig::default();
        self.tier.policy = policy;
        match policy {
            TierPolicy::None => {}
            TierPolicy::Flat => {
                self.tier.scm.capacity = self.dram.capacity;
            }
            TierPolicy::Cache => {
                self.tier.scm.capacity = self.dram.capacity;
                self.dram.capacity = (self.dram.capacity / 16)
                    .max(self.dram.banks * self.dram.row_bytes);
            }
        }
        self.kernel.dram_capacity = self.tier.visible_capacity(self.dram.capacity);
        self
    }

    /// Returns this configuration with the memory controller's flight
    /// recorder enabled: a ring of up to `capacity` MC transactions,
    /// exportable as an `impulse-trace-v1` capture. `capacity = 0`
    /// disables recording (the default).
    #[must_use]
    pub fn with_flight(mut self, capacity: usize) -> Self {
        self.mc.flight_capacity = capacity;
        self
    }

    /// Returns this configuration with MC line-hotness telemetry enabled
    /// (a deterministic count-min sketch with epoch decay; see
    /// [`impulse_obs::SketchConfig`]).
    #[must_use]
    pub fn with_hotness(mut self, sketch: impulse_obs::SketchConfig) -> Self {
        self.mc.hotness = Some(sketch);
        self
    }

    /// Number of L2 page colors implied by the L2 geometry
    /// (`size / ways / page`).
    pub fn l2_colors(&self) -> u64 {
        self.l2.size / self.l2.ways / impulse_types::geom::PAGE_SIZE
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paint_matches_paper_parameters() {
        let c = SystemConfig::paint();
        assert_eq!(c.l1.size, 32 * 1024);
        assert_eq!(c.l1.line, 32);
        assert_eq!(c.l1.ways, 1);
        assert_eq!(c.l2.size, 256 * 1024);
        assert_eq!(c.l2.line, 128);
        assert_eq!(c.l2.ways, 2);
        assert_eq!(c.t_l1_hit, 1);
        assert_eq!(c.t_l2_hit, 7);
        assert_eq!(c.l2_colors(), 32);
        assert!(!c.l1_prefetch);
        assert!(!c.mc.prefetch_nonshadow);
    }

    #[test]
    fn with_prefetch_sets_both_mc_buffers() {
        let c = SystemConfig::paint().with_prefetch(true, true);
        assert!(c.mc.prefetch_nonshadow);
        assert!(c.mc.prefetch_shadow);
        assert!(c.l1_prefetch);
    }

    #[test]
    fn memory_latency_is_near_forty_cycles() {
        // The end-to-end demand-miss path the config implies:
        // L2 lookup + bus request + MC overhead + DRAM row miss +
        // line transfer + critical word.
        let c = SystemConfig::paint();
        let xfer = 128 / c.dram.bus_bytes_per_cycle;
        let total = c.t_l2_hit
            + c.bus.t_request
            + c.mc.t_overhead
            + c.dram.t_row_miss
            + xfer
            + c.bus.t_critical;
        assert!((38..=46).contains(&total), "memory path = {total} cycles");
    }
}
