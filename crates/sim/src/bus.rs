//! The system bus (HP Runway-like) occupancy model.
//!
//! A split-transaction bus between the CPU/L2 module and the memory
//! controller. Requests cost a fixed latency; data transfers occupy the
//! bus in proportion to their size. Demand fills resume the CPU at the
//! *critical word* rather than the end of the line, as the PA-RISC
//! memory system did; the full transfer still occupies the bus and is
//! charged to bandwidth.

use impulse_fault::{BusFaultStats, TimeoutInjector};
use impulse_obs::{MetricsRegistry, Observe};
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::Cycle;

/// Snapshot section tag for [`Bus`] (`"BUS "`).
const TAG_BUS: u32 = 0x4255_5320;

/// Bus timing configuration, in CPU cycles (the Runway and the CPU ran at
/// the same 120 MHz in the paper's configuration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusConfig {
    /// Address/request phase latency.
    pub t_request: Cycle,
    /// Bytes transferred per cycle (64-bit Runway → 8 B/cycle).
    pub bytes_per_cycle: u64,
    /// Cycles from transfer start until the critical word reaches the CPU.
    pub t_critical: Cycle,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            t_request: 2,
            bytes_per_cycle: 8,
            t_critical: 4,
        }
    }
}

/// Bus statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Data transfers carried.
    pub transfers: u64,
    /// Total data bytes moved.
    pub bytes: u64,
    /// Cycles demand transfers spent waiting for a busy bus.
    pub contention: u64,
}

/// The system bus.
///
/// # Examples
///
/// ```
/// use impulse_sim::{Bus, BusConfig};
///
/// let mut bus = Bus::new(BusConfig::default());
/// // A 128-byte fill whose data is ready at cycle 100: the CPU resumes
/// // at the critical word, before the full line has transferred.
/// let critical = bus.demand_transfer(128, 100);
/// assert!(critical < 100 + 128 / bus.config().bytes_per_cycle);
/// ```
#[derive(Clone, Debug)]
pub struct Bus {
    cfg: BusConfig,
    busy_until: Cycle,
    stats: BusStats,
    faults: Option<TimeoutInjector>,
}

impl Bus {
    /// Builds a bus.
    pub fn new(cfg: BusConfig) -> Self {
        Self {
            cfg,
            busy_until: 0,
            stats: BusStats::default(),
            faults: None,
        }
    }

    /// Attaches a request-timeout injector: demand transfers consult it
    /// and absorb the bounded retry/backoff delay before arbitration.
    pub fn set_fault_injector(&mut self, inj: TimeoutInjector) {
        self.faults = Some(inj);
    }

    /// Timeout/retry counters (zero when no injector is attached).
    pub fn fault_stats(&self) -> BusFaultStats {
        self.faults
            .as_ref()
            .map(TimeoutInjector::stats)
            .unwrap_or_default()
    }

    /// The configuration.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Resets statistics (occupancy state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }

    /// Request-phase latency (address out to the controller).
    pub fn request_latency(&self) -> Cycle {
        self.cfg.t_request
    }

    /// Carries a demand fill of `bytes` whose data is ready at the
    /// controller at `data_ready`; returns the cycle the *critical word*
    /// reaches the CPU. The bus stays occupied for the full transfer.
    pub fn demand_transfer(&mut self, bytes: u64, data_ready: Cycle) -> Cycle {
        // A timed-out request burns its retry/backoff budget before it
        // can win arbitration; the delay is bounded by the injector's
        // retry cap, so forward progress is guaranteed.
        let data_ready = match self.faults.as_mut() {
            Some(inj) => data_ready + inj.delay(data_ready),
            None => data_ready,
        };
        let start = data_ready.max(self.busy_until);
        self.stats.contention += start - data_ready;
        let full = start + bytes.div_ceil(self.cfg.bytes_per_cycle);
        self.busy_until = full;
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        start + self.cfg.t_critical.min(full - start)
    }

    /// Carries a background transfer (prefetch fill, posted writeback):
    /// occupies the bus but nobody waits on the result.
    pub fn background_transfer(&mut self, bytes: u64, data_ready: Cycle) -> Cycle {
        let start = data_ready.max(self.busy_until);
        let full = start + bytes.div_ceil(self.cfg.bytes_per_cycle);
        self.busy_until = full;
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        full
    }

    /// Serializes the occupancy state, statistics, and any attached
    /// timeout injector.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_BUS);
        w.u64(self.busy_until);
        w.u64(self.stats.transfers);
        w.u64(self.stats.bytes);
        w.u64(self.stats.contention);
        w.bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.snap_save(w);
        }
    }

    /// Restores the state saved by [`Bus::snap_save`] into a bus built
    /// with the same configuration (including fault attachment).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the image is malformed or the injector
    /// attachment disagrees with the snapshot.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_BUS)?;
        self.busy_until = r.u64()?;
        self.stats.transfers = r.u64()?;
        self.stats.bytes = r.u64()?;
        self.stats.contention = r.u64()?;
        let had_faults = r.bool()?;
        match (&mut self.faults, had_faults) {
            (Some(f), true) => f.snap_load(r)?,
            (None, false) => {}
            _ => return Err(SnapError::Geometry("bus fault injector presence")),
        }
        Ok(())
    }
}

impl Observe for Bus {
    fn observe(&self, m: &mut MetricsRegistry) {
        m.counter("bus.transfers", self.stats.transfers);
        m.counter("bus.bytes", self.stats.bytes);
        m.counter("bus.contention", self.stats.contention);
        if self.faults.is_some() {
            let f = self.fault_stats();
            m.counter("bus.fault.timeouts", f.timeouts);
            m.counter("bus.fault.retries", f.retries);
            m.counter("bus.fault.recovery_cycles", f.recovery_cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_word_beats_full_transfer() {
        let mut bus = Bus::new(BusConfig::default());
        let crit = bus.demand_transfer(128, 100);
        assert_eq!(crit, 104); // 4-cycle critical word
                               // The bus is busy for the full 16 cycles.
        let crit2 = bus.demand_transfer(128, 100);
        assert_eq!(crit2, 116 + 4);
        assert_eq!(bus.stats().contention, 16);
    }

    #[test]
    fn small_transfer_critical_capped() {
        let mut bus = Bus::new(BusConfig::default());
        // 8 bytes = 1 cycle; critical word cannot arrive after the end.
        let crit = bus.demand_transfer(8, 0);
        assert_eq!(crit, 1);
    }

    #[test]
    fn background_counts_bytes_but_returns_full() {
        let mut bus = Bus::new(BusConfig::default());
        let done = bus.background_transfer(128, 0);
        assert_eq!(done, 16);
        assert_eq!(bus.stats().bytes, 128);
        assert_eq!(bus.stats().transfers, 1);
    }

    #[test]
    fn injected_timeouts_delay_demand_with_bounded_retries() {
        use impulse_fault::{FaultPlan, Trigger};
        let mut bus = Bus::new(BusConfig::default());
        let mut clean = Bus::new(BusConfig::default());
        bus.set_fault_injector(TimeoutInjector::new(
            FaultPlan::new(Trigger::EveryN { every: 1, phase: 0 }, 7),
            3,
            8,
        ));
        for t in 0..20 {
            let faulty = bus.demand_transfer(128, t * 1000);
            let base = clean.demand_transfer(128, t * 1000);
            assert!(faulty > base, "every request times out here");
            // Worst case: 3 attempts of 8, 16, 32 cycles of backoff.
            assert!(faulty - base <= 8 + 16 + 32);
        }
        let f = bus.fault_stats();
        assert_eq!(f.timeouts, 20);
        assert!(f.retries <= f.timeouts * 3, "retry bound holds");
        assert!(f.recovery_cycles > 0);
        // Fault-free buses report zeros without an injector.
        assert_eq!(clean.fault_stats().timeouts, 0);
    }

    #[test]
    fn background_delays_demand() {
        let mut bus = Bus::new(BusConfig::default());
        bus.background_transfer(128, 0); // busy until 16
        let crit = bus.demand_transfer(32, 4);
        assert!(crit > 16);
    }
}
