//! Trace-driven replay: capture a workload's machine-API operation
//! stream once, then re-evaluate its timing in a tight batched loop.
//!
//! The capture boundary is the [`Machine`] public API: demand accesses
//! (`load`/`store`/`compute`), and every OS entry point with its full
//! arguments and outcome. Replaying re-executes the stream against a
//! fresh machine — the kernel, controller, caches and DRAM are all
//! real, so the final statistics are *byte-identical* to the original
//! execution by construction. What replay saves is the workload's own
//! control flow (index arithmetic, tiling loops, sparse traversals):
//! the recorder folds periodic access runs into affine [`Op::Pattern`]
//! templates, and the evaluator walks them with a branch-lean L1-hit
//! fast path that defers all order-insensitive statistics into one
//! bulk flush (see `MemorySystem::apply_replay_pending`).
//!
//! Encoded captures (`impulse-replay-v1`) are LEB128 varint streams
//! sealed with an fnv64 digest trailer, embedding any measurement-epoch
//! snapshots (`Machine::snapshot` at `reset_stats`) so a replay under
//! the identical configuration can fast-forward over warm-up.
//!
//! Replay must fall back to ordinary execution when a configuration
//! carries fault schedules (fault-plan RNG draws are keyed to host
//! call sites the evaluator does not reproduce — see
//! [`replayable`]), or when a capture was poisoned (e.g. a tracer was
//! attached mid-recording).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use impulse_core::flight::{self, get_varint, put_varint, unzigzag, zigzag, TraceError};
use impulse_os::{Pid, RemapGrant};
use impulse_types::geom::{PAGE_SHIFT, PAGE_SIZE};
use impulse_types::{AccessKind, PAddr, VAddr, VRange};

use crate::config::SystemConfig;
use crate::machine::Machine;
use crate::system::ReplayPending;

/// Magic prefix of an encoded `impulse-replay-v1` capture (16 bytes).
pub const REPLAY_MAGIC: &[u8; 16] = b"impulse-replay1\0";

/// Minimum repetitions before a periodic run is folded into a pattern.
const MIN_REPS: u64 = 4;
/// Longest slot template the folder searches for.
const MAX_PERIOD: usize = 8;
/// Raw mem-op window size between folding passes.
const FOLD_WINDOW: usize = 1 << 16;

/// Replay-side translation memo slots (vpage → page base). Larger than
/// the simulator's own 16-entry memo because the evaluator has no
/// instruction-fetch pressure to model — this is pure host-side cache.
const XLAT_SLOTS: usize = 1024;
/// Replay-side TLB memo slots ((vpage, generation) pairs).
const TLB_SLOTS: usize = 256;

// ---------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------

/// What a memory slot in a folded pattern does each repetition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotKind {
    /// Demand load at `base + rep * stride`.
    Load,
    /// Demand store at `base + rep * stride`.
    Store,
    /// `base` compute cycles (stride is always zero).
    Compute,
}

/// One slot of a folded periodic run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// What the slot does.
    pub kind: SlotKind,
    /// First-repetition address (or compute count).
    pub base: u64,
    /// Per-repetition address advance (two's-complement).
    pub stride: i64,
}

/// One recorded machine operation. The demand ops are inline; folded
/// patterns and (rare) syscalls box their payloads so `Op` itself stays
/// 16 bytes — million-op streams decode into a compact array the
/// evaluator scans linearly instead of a cache-hostile fat enum.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Demand load.
    Load(u64),
    /// Demand store.
    Store(u64),
    /// `n` compute cycles.
    Compute(u64),
    /// A folded affine run.
    Pattern(Box<PatternOp>),
    /// A recorded syscall-class operation with its outcome.
    Sys(Box<SysOp>),
}

/// `reps` repetitions of an affine slot template — the folded form of
/// tiling/streaming inner loops.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternOp {
    /// Repetition count (≥ `MIN_REPS`).
    pub reps: u64,
    /// The per-repetition slot template.
    pub slots: Box<[Slot]>,
}

/// A syscall-class operation. Addresses and ranges are raw `u64`
/// virtual addresses; grant- and pid-valued arguments are ordinals into
/// the capture's creation order (grants count only successful remaps;
/// pid 0 is the process current when recording started).
#[derive(Clone, Debug, PartialEq)]
pub enum SysOp {
    /// `Machine::program_stream`.
    ProgramStream {
        /// Virtual address the stream starts at.
        v: u64,
        /// Physical stride.
        stride: i64,
    },
    /// `Machine::alloc_region`; `out` is the granted range on success.
    Alloc {
        /// Requested bytes.
        bytes: u64,
        /// Requested alignment.
        align: u64,
        /// `(start, len)` of the granted range, `None` on error.
        out: Option<(u64, u64)>,
    },
    /// `Machine::alloc_region_colored`.
    AllocColored {
        /// Requested bytes.
        bytes: u64,
        /// Requested alignment.
        align: u64,
        /// Allowed L2 colors.
        colors: Box<[u64]>,
        /// `(start, len)` of the granted range, `None` on error.
        out: Option<(u64, u64)>,
    },
    /// `Machine::flush_region`.
    FlushRegion {
        /// Range start.
        start: u64,
        /// Range length.
        len: u64,
    },
    /// `Machine::purge_region`.
    PurgeRegion {
        /// Range start.
        start: u64,
        /// Range length.
        len: u64,
    },
    /// `Machine::sys_remap_gather`.
    RemapGather {
        /// Target range `(start, len)`.
        target: (u64, u64),
        /// Element size in bytes.
        elem_size: u64,
        /// Index-vector pool ordinal.
        pool: u32,
        /// Index region `(start, len)`.
        index_region: (u64, u64),
        /// Bytes per stored index.
        index_bytes: u64,
        /// Granted alias `(start, len)`, `None` on error.
        out: Option<(u64, u64)>,
    },
    /// `Machine::sys_remap_gather_interleaved`.
    RemapGatherInterleaved {
        /// Target range `(start, len)`.
        target: (u64, u64),
        /// Element size in bytes.
        elem_size: u64,
        /// Index-vector pool ordinal.
        pool: u32,
        /// Index region `(start, len)`.
        index_region: (u64, u64),
        /// Bytes per stored index.
        index_bytes: u64,
        /// Interleave partner address.
        partner: u64,
        /// Granted alias `(start, len)`, `None` on error.
        out: Option<(u64, u64)>,
    },
    /// `Machine::sys_remap_strided`.
    RemapStrided {
        /// First object address.
        base: u64,
        /// Object size.
        object_size: u64,
        /// Object stride.
        stride: u64,
        /// Object count.
        count: u64,
        /// Alias alignment.
        alias_align: u64,
        /// Granted alias `(start, len)`, `None` on error.
        out: Option<(u64, u64)>,
    },
    /// `Machine::sys_retarget_strided`.
    RetargetStrided {
        /// Grant ordinal.
        grant: u32,
        /// New base address.
        new_base: u64,
        /// Object size.
        object_size: u64,
        /// Object stride.
        stride: u64,
        /// Object count.
        count: u64,
        /// Whether the call succeeded.
        ok: bool,
    },
    /// `Machine::sys_recolor`.
    Recolor {
        /// Target range `(start, len)`.
        target: (u64, u64),
        /// Requested colors.
        colors: Box<[u64]>,
        /// Granted alias `(start, len)`, `None` on error.
        out: Option<(u64, u64)>,
    },
    /// `Machine::sys_superpage`.
    Superpage {
        /// Target range `(start, len)`.
        target: (u64, u64),
        /// Granted alias `(start, len)`, `None` on error.
        out: Option<(u64, u64)>,
    },
    /// `Machine::sys_spawn`; `pid` is the raw id returned (asserted on
    /// replay).
    Spawn {
        /// Raw pid the spawn returned.
        pid: u32,
    },
    /// `Machine::sys_switch`.
    Switch {
        /// Pid ordinal (0 = recording-start process).
        pid: u32,
        /// Whether the call succeeded.
        ok: bool,
    },
    /// `Machine::sys_share`.
    Share {
        /// Grant ordinal.
        grant: u32,
        /// Receiver pid ordinal.
        with: u32,
        /// Shared alias `(start, len)`, `None` on error.
        out: Option<(u64, u64)>,
    },
    /// `Machine::sys_release`.
    Release {
        /// Grant ordinal.
        grant: u32,
        /// Whether the call succeeded.
        ok: bool,
    },
    /// `Machine::reset_stats`; `snapshot` indexes the capture's embedded
    /// post-reset machine images (`u32::MAX` when none was taken).
    ResetStats {
        /// Snapshot pool ordinal.
        snapshot: u32,
    },
    /// `Machine::enable_auto_promotion`.
    EnableAutoPromotion {
        /// TLB-miss threshold.
        threshold: u64,
    },
}

// ---------------------------------------------------------------------
// Capture + recorder
// ---------------------------------------------------------------------

/// A complete recorded run: the folded operation stream plus everything
/// it references (index-vector pools, embedded epoch snapshots) and the
/// configuration fingerprint it was recorded under.
#[derive(Clone, Debug)]
pub struct ReplayCapture {
    /// `Machine::config_fingerprint` of the recording configuration.
    pub fingerprint: u64,
    /// Unfolded operation count (loads + stores + computes + syscalls).
    pub raw_ops: u64,
    /// The folded operation stream.
    pub ops: Vec<Op>,
    /// Deduplicated gather index vectors, by pool ordinal.
    pub pools: Vec<Arc<Vec<u64>>>,
    /// Post-`reset_stats` machine images, by snapshot ordinal.
    pub snapshots: Vec<Vec<u8>>,
}

/// Raw (unfolded) memory op kinds inside the recorder window.
const RAW_LOAD: u8 = 0;
const RAW_STORE: u8 = 1;
const RAW_COMPUTE: u8 = 2;

/// Streaming recorder the [`Machine`] drives from its public API hooks.
/// Owned by the machine between `start_recording` and `take_recording`.
#[derive(Clone, Debug)]
pub struct Recorder {
    cfg: SystemConfig,
    ops: Vec<Op>,
    win: Vec<(u8, u64)>,
    pools: Vec<Arc<Vec<u64>>>,
    snapshots: Vec<Vec<u8>>,
    /// Successful-grant ordinals, keyed by alias start address.
    grants: HashMap<u64, u32>,
    next_grant: u32,
    /// Pid ordinals, keyed by raw pid; 0 is the recording-start process.
    pids: HashMap<u32, u32>,
    raw_ops: u64,
    poisoned: Option<String>,
}

impl Recorder {
    pub(crate) fn new(cfg: SystemConfig, boot: Pid) -> Self {
        let mut pids = HashMap::new();
        pids.insert(boot.raw(), 0);
        Self {
            cfg,
            ops: Vec::new(),
            win: Vec::with_capacity(FOLD_WINDOW),
            pools: Vec::new(),
            snapshots: Vec::new(),
            grants: HashMap::new(),
            next_grant: 0,
            pids,
            raw_ops: 0,
            poisoned: None,
        }
    }

    pub(crate) fn cfg(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Marks the capture as unreplayable with a reason (first wins).
    pub(crate) fn poison(&mut self, why: &str) {
        if self.poisoned.is_none() {
            self.poisoned = Some(why.to_string());
        }
    }

    /// Records a demand load (the hot hook).
    #[inline]
    pub(crate) fn rec_load(&mut self, v: u64) {
        self.mem(RAW_LOAD, v);
    }

    /// Records a demand store (the hot hook).
    #[inline]
    pub(crate) fn rec_store(&mut self, v: u64) {
        self.mem(RAW_STORE, v);
    }

    /// Records a compute burst (the hot hook).
    #[inline]
    pub(crate) fn rec_compute(&mut self, n: u64) {
        self.mem(RAW_COMPUTE, n);
    }

    #[inline]
    fn mem(&mut self, kind: u8, val: u64) {
        self.raw_ops += 1;
        self.win.push((kind, val));
        if self.win.len() >= FOLD_WINDOW {
            self.fold_flush();
        }
    }

    /// Folds the buffered raw window into `ops` and clears it.
    fn fold_flush(&mut self) {
        let win = std::mem::take(&mut self.win);
        fold_into(&win, &mut self.ops);
        self.win = win;
        self.win.clear();
    }

    fn range(r: VRange) -> (u64, u64) {
        (r.start().raw(), r.len())
    }

    fn out_of<E>(res: &Result<RemapGrant, E>) -> Option<(u64, u64)> {
        res.as_ref().ok().map(|g| Self::range(g.alias))
    }

    /// Registers a successful grant and returns nothing; ordinals are
    /// implicit in creation order.
    fn note_grant<E>(&mut self, res: &Result<RemapGrant, E>) {
        if let Ok(g) = res {
            self.grants.insert(g.alias.start().raw(), self.next_grant);
            self.next_grant += 1;
        }
    }

    /// Resolves a grant's ordinal; poisons the capture if the grant was
    /// never recorded (created before recording started).
    fn grant_ordinal(&mut self, g: &RemapGrant) -> u32 {
        match self.grants.get(&g.alias.start().raw()) {
            Some(&o) => o,
            None => {
                self.poison("grant predates recording");
                u32::MAX
            }
        }
    }

    fn pid_ordinal(&mut self, pid: Pid) -> u32 {
        match self.pids.get(&pid.raw()) {
            Some(&o) => o,
            None => {
                self.poison("pid predates recording");
                u32::MAX
            }
        }
    }

    fn pool_ordinal(&mut self, indices: &Arc<Vec<u64>>) -> u32 {
        for (i, p) in self.pools.iter().enumerate() {
            if Arc::ptr_eq(p, indices) {
                return i as u32;
            }
        }
        self.pools.push(indices.clone());
        (self.pools.len() - 1) as u32
    }

    fn push(&mut self, op: SysOp) {
        self.raw_ops += 1;
        self.fold_flush();
        self.ops.push(Op::Sys(Box::new(op)));
    }

    pub(crate) fn program_stream(&mut self, v: u64, stride: i64) {
        self.push(SysOp::ProgramStream { v, stride });
    }

    pub(crate) fn alloc<E>(&mut self, bytes: u64, align: u64, res: &Result<VRange, E>) {
        let out = res.as_ref().ok().map(|&r| Self::range(r));
        self.push(SysOp::Alloc { bytes, align, out });
    }

    pub(crate) fn alloc_colored<E>(
        &mut self,
        bytes: u64,
        align: u64,
        colors: &[u64],
        res: &Result<VRange, E>,
    ) {
        let out = res.as_ref().ok().map(|&r| Self::range(r));
        self.push(SysOp::AllocColored {
            bytes,
            align,
            colors: colors.into(),
            out,
        });
    }

    pub(crate) fn flush_region(&mut self, r: VRange) {
        let (start, len) = Self::range(r);
        self.push(SysOp::FlushRegion { start, len });
    }

    pub(crate) fn purge_region(&mut self, r: VRange) {
        let (start, len) = Self::range(r);
        self.push(SysOp::PurgeRegion { start, len });
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn remap_gather<E>(
        &mut self,
        target: VRange,
        elem_size: u64,
        indices: &Arc<Vec<u64>>,
        index_region: VRange,
        index_bytes: u64,
        partner: Option<VAddr>,
        res: &Result<RemapGrant, E>,
    ) {
        let pool = self.pool_ordinal(indices);
        let out = Self::out_of(res);
        self.note_grant(res);
        let op = match partner {
            None => SysOp::RemapGather {
                target: Self::range(target),
                elem_size,
                pool,
                index_region: Self::range(index_region),
                index_bytes,
                out,
            },
            Some(p) => SysOp::RemapGatherInterleaved {
                target: Self::range(target),
                elem_size,
                pool,
                index_region: Self::range(index_region),
                index_bytes,
                partner: p.raw(),
                out,
            },
        };
        self.push(op);
    }

    pub(crate) fn remap_strided<E>(
        &mut self,
        base: VAddr,
        object_size: u64,
        stride: u64,
        count: u64,
        alias_align: u64,
        res: &Result<RemapGrant, E>,
    ) {
        let out = Self::out_of(res);
        self.note_grant(res);
        self.push(SysOp::RemapStrided {
            base: base.raw(),
            object_size,
            stride,
            count,
            alias_align,
            out,
        });
    }

    pub(crate) fn retarget_strided<T, E>(
        &mut self,
        grant: &RemapGrant,
        new_base: VAddr,
        object_size: u64,
        stride: u64,
        count: u64,
        res: &Result<T, E>,
    ) {
        let grant = self.grant_ordinal(grant);
        self.push(SysOp::RetargetStrided {
            grant,
            new_base: new_base.raw(),
            object_size,
            stride,
            count,
            ok: res.is_ok(),
        });
    }

    pub(crate) fn recolor<E>(
        &mut self,
        target: VRange,
        colors: &[u64],
        res: &Result<RemapGrant, E>,
    ) {
        let out = Self::out_of(res);
        self.note_grant(res);
        self.push(SysOp::Recolor {
            target: Self::range(target),
            colors: colors.into(),
            out,
        });
    }

    pub(crate) fn superpage<E>(&mut self, target: VRange, res: &Result<RemapGrant, E>) {
        let out = Self::out_of(res);
        self.note_grant(res);
        self.push(SysOp::Superpage {
            target: Self::range(target),
            out,
        });
    }

    pub(crate) fn spawn(&mut self, pid: Pid) {
        let ordinal = self.pids.len() as u32;
        self.pids.insert(pid.raw(), ordinal);
        self.push(SysOp::Spawn { pid: pid.raw() });
    }

    pub(crate) fn switch<T, E>(&mut self, pid: Pid, res: &Result<T, E>) {
        let pid = self.pid_ordinal(pid);
        self.push(SysOp::Switch {
            pid,
            ok: res.is_ok(),
        });
    }

    pub(crate) fn share<E>(&mut self, grant: &RemapGrant, with: Pid, res: &Result<VRange, E>) {
        let grant = self.grant_ordinal(grant);
        let with = self.pid_ordinal(with);
        let out = res.as_ref().ok().map(|&r| Self::range(r));
        self.push(SysOp::Share { grant, with, out });
    }

    pub(crate) fn release<T, E>(&mut self, grant: &RemapGrant, res: &Result<T, E>) {
        let ordinal = self.grant_ordinal(grant);
        if res.is_ok() {
            // The alias is gone; a future grant may legitimately reuse
            // its start address under a fresh ordinal.
            self.grants.remove(&grant.alias.start().raw());
        }
        self.push(SysOp::Release {
            grant: ordinal,
            ok: res.is_ok(),
        });
    }

    pub(crate) fn reset_stats(&mut self, snapshot: Vec<u8>) {
        self.snapshots.push(snapshot);
        let snapshot = (self.snapshots.len() - 1) as u32;
        self.push(SysOp::ResetStats { snapshot });
    }

    pub(crate) fn enable_auto_promotion(&mut self, threshold: u64) {
        self.push(SysOp::EnableAutoPromotion { threshold });
    }

    /// Finalizes the capture.
    ///
    /// # Errors
    ///
    /// Returns the poison reason if the stream cannot be replayed
    /// faithfully (e.g. it references grants or pids that predate
    /// recording, or a tracer was attached mid-capture).
    pub(crate) fn finish(mut self) -> Result<ReplayCapture, String> {
        self.fold_flush();
        if let Some(why) = self.poisoned {
            return Err(why);
        }
        Ok(ReplayCapture {
            fingerprint: Machine::config_fingerprint(&self.cfg),
            raw_ops: self.raw_ops,
            ops: self.ops,
            pools: self.pools,
            snapshots: self.snapshots,
        })
    }
}

/// Folds a raw `(kind, value)` window into ops: periodic affine runs
/// become [`Op::Pattern`], adjacent computes merge, everything else is
/// emitted verbatim. Folding is lossless — evaluation order and every
/// address are reconstructed exactly.
fn fold_into(win: &[(u8, u64)], out: &mut Vec<Op>) {
    let n = win.len();
    let mut i = 0;
    while i < n {
        let mut folded = false;
        let max_p = MAX_PERIOD.min((n - i) / 2);
        for p in 1..=max_p {
            let Some((slots, reps)) = try_pattern(&win[i..], p) else {
                continue;
            };
            out.push(Op::Pattern(Box::new(PatternOp { reps, slots })));
            i += p * reps as usize;
            folded = true;
            break;
        }
        if folded {
            continue;
        }
        let (kind, val) = win[i];
        match kind {
            RAW_LOAD => out.push(Op::Load(val)),
            RAW_STORE => out.push(Op::Store(val)),
            _ => {
                // Adjacent compute bursts are equivalent to their sum.
                if let Some(Op::Compute(prev)) = out.last_mut() {
                    *prev += val;
                } else {
                    out.push(Op::Compute(val));
                }
            }
        }
        i += 1;
    }
}

/// Attempts to read a period-`p` affine pattern from the head of `w`:
/// same kinds every period, constant per-slot stride (zero for
/// computes). Returns the template and repetition count if it repeats
/// at least [`MIN_REPS`] times.
fn try_pattern(w: &[(u8, u64)], p: usize) -> Option<(Box<[Slot]>, u64)> {
    if w.len() < 2 * p {
        return None;
    }
    let mut slots = Vec::with_capacity(p);
    for j in 0..p {
        let (k0, v0) = w[j];
        let (k1, v1) = w[p + j];
        if k0 != k1 {
            return None;
        }
        let stride = if k0 == RAW_COMPUTE {
            if v0 != v1 {
                return None;
            }
            0
        } else {
            v1.wrapping_sub(v0) as i64
        };
        let kind = match k0 {
            RAW_LOAD => SlotKind::Load,
            RAW_STORE => SlotKind::Store,
            _ => SlotKind::Compute,
        };
        slots.push(Slot {
            kind,
            base: v0,
            stride,
        });
    }
    let mut reps: u64 = 2;
    'ext: while (reps as usize + 1) * p <= w.len() {
        let base = reps as usize * p;
        for (j, s) in slots.iter().enumerate() {
            let (k, v) = w[base + j];
            let want_kind = match s.kind {
                SlotKind::Load => RAW_LOAD,
                SlotKind::Store => RAW_STORE,
                SlotKind::Compute => RAW_COMPUTE,
            };
            let want_val = s
                .base
                .wrapping_add_signed(s.stride.wrapping_mul(reps as i64));
            if k != want_kind || v != want_val {
                break 'ext;
            }
        }
        reps += 1;
    }
    // Only fold when it actually compresses: enough repetitions and
    // more ops covered than the slot template costs to store.
    if reps >= MIN_REPS && reps as usize * p >= 3 * p + 4 {
        Some((slots.into_boxed_slice(), reps))
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Codec (impulse-replay-v1)
// ---------------------------------------------------------------------

fn put_opt_range(out: &mut Vec<u8>, r: Option<(u64, u64)>) {
    match r {
        None => out.push(0),
        Some((s, l)) => {
            out.push(1);
            put_varint(out, s);
            put_varint(out, l);
        }
    }
}

fn get_opt_range(b: &[u8], pos: &mut usize) -> Result<Option<(u64, u64)>, TraceError> {
    let tag = get_u8(b, pos)?;
    if tag == 0 {
        return Ok(None);
    }
    let s = get_varint(b, pos)?;
    let l = get_varint(b, pos)?;
    Ok(Some((s, l)))
}

fn get_u8(b: &[u8], pos: &mut usize) -> Result<u8, TraceError> {
    let v = *b.get(*pos).ok_or(TraceError::Truncated)?;
    *pos += 1;
    Ok(v)
}

impl ReplayCapture {
    /// Serializes the capture as a sealed `impulse-replay-v1` byte
    /// stream.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.ops.len() * 4);
        out.extend_from_slice(REPLAY_MAGIC);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        put_varint(&mut out, self.raw_ops);
        put_varint(&mut out, self.pools.len() as u64);
        for pool in &self.pools {
            put_varint(&mut out, pool.len() as u64);
            for &ix in pool.iter() {
                put_varint(&mut out, ix);
            }
        }
        put_varint(&mut out, self.snapshots.len() as u64);
        for snap in &self.snapshots {
            put_varint(&mut out, snap.len() as u64);
            out.extend_from_slice(snap);
        }
        put_varint(&mut out, self.ops.len() as u64);
        let mut prev: u64 = 0;
        for op in &self.ops {
            encode_op(&mut out, op, &mut prev);
        }
        flight::seal(out)
    }

    /// Decodes a sealed `impulse-replay-v1` byte stream.
    ///
    /// # Errors
    ///
    /// Returns a typed [`TraceError`] on digest mismatch, truncation,
    /// bad magic, or malformed varints — never panics on hostile input.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let b = flight::unseal(bytes)?;
        if b.len() < 24 || &b[..16] != REPLAY_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let fingerprint = u64::from_le_bytes(b[16..24].try_into().expect("8 bytes"));
        let mut pos = 24usize;
        let raw_ops = get_varint(b, &mut pos)?;
        let n_pools = get_varint(b, &mut pos)? as usize;
        let mut pools = Vec::with_capacity(n_pools.min(1 << 16));
        for _ in 0..n_pools {
            let len = get_varint(b, &mut pos)? as usize;
            if len > b.len() {
                return Err(TraceError::Truncated);
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(get_varint(b, &mut pos)?);
            }
            pools.push(Arc::new(v));
        }
        let n_snaps = get_varint(b, &mut pos)? as usize;
        let mut snapshots = Vec::with_capacity(n_snaps.min(1 << 10));
        for _ in 0..n_snaps {
            let len = get_varint(b, &mut pos)? as usize;
            let end = pos.checked_add(len).ok_or(TraceError::Truncated)?;
            if end > b.len() {
                return Err(TraceError::Truncated);
            }
            snapshots.push(b[pos..end].to_vec());
            pos = end;
        }
        let n_ops = get_varint(b, &mut pos)? as usize;
        if n_ops > b.len() {
            return Err(TraceError::Truncated);
        }
        let mut ops = Vec::with_capacity(n_ops);
        let mut prev: u64 = 0;
        for _ in 0..n_ops {
            ops.push(decode_op(b, &mut pos, &mut prev)?);
        }
        if pos != b.len() {
            return Err(TraceError::TrailingData);
        }
        Ok(Self {
            fingerprint,
            raw_ops,
            ops,
            pools,
            snapshots,
        })
    }
}

const T_LOAD: u8 = 0;
const T_STORE: u8 = 1;
const T_COMPUTE: u8 = 2;
const T_PATTERN: u8 = 3;
const T_PROGRAM_STREAM: u8 = 4;
const T_ALLOC: u8 = 5;
const T_ALLOC_COLORED: u8 = 6;
const T_FLUSH: u8 = 7;
const T_PURGE: u8 = 8;
const T_GATHER: u8 = 9;
const T_GATHER_INTL: u8 = 10;
const T_STRIDED: u8 = 11;
const T_RETARGET: u8 = 12;
const T_RECOLOR: u8 = 13;
const T_SUPERPAGE: u8 = 14;
const T_SPAWN: u8 = 15;
const T_SWITCH: u8 = 16;
const T_SHARE: u8 = 17;
const T_RELEASE: u8 = 18;
const T_RESET: u8 = 19;
const T_PROMO: u8 = 20;

fn encode_op(out: &mut Vec<u8>, op: &Op, prev: &mut u64) {
    match op {
        Op::Load(v) => {
            out.push(T_LOAD);
            put_varint(out, zigzag(v.wrapping_sub(*prev) as i64));
            *prev = *v;
        }
        Op::Store(v) => {
            out.push(T_STORE);
            put_varint(out, zigzag(v.wrapping_sub(*prev) as i64));
            *prev = *v;
        }
        Op::Compute(n) => {
            out.push(T_COMPUTE);
            put_varint(out, *n);
        }
        Op::Pattern(p) => {
            let PatternOp { reps, slots } = &**p;
            out.push(T_PATTERN);
            put_varint(out, *reps);
            put_varint(out, slots.len() as u64);
            for s in slots.iter() {
                out.push(match s.kind {
                    SlotKind::Load => 0,
                    SlotKind::Store => 1,
                    SlotKind::Compute => 2,
                });
                put_varint(out, zigzag(s.base.wrapping_sub(*prev) as i64));
                put_varint(out, zigzag(s.stride));
                if s.kind != SlotKind::Compute {
                    *prev = s.base;
                }
            }
        }
        Op::Sys(sys) => match &**sys {
            SysOp::ProgramStream { v, stride } => {
                out.push(T_PROGRAM_STREAM);
                put_varint(out, *v);
                put_varint(out, zigzag(*stride));
            }
            SysOp::Alloc {
                bytes,
                align,
                out: o,
            } => {
                out.push(T_ALLOC);
                put_varint(out, *bytes);
                put_varint(out, *align);
                put_opt_range(out, *o);
            }
            SysOp::AllocColored {
                bytes,
                align,
                colors,
                out: o,
            } => {
                out.push(T_ALLOC_COLORED);
                put_varint(out, *bytes);
                put_varint(out, *align);
                put_varint(out, colors.len() as u64);
                for &c in colors.iter() {
                    put_varint(out, c);
                }
                put_opt_range(out, *o);
            }
            SysOp::FlushRegion { start, len } => {
                out.push(T_FLUSH);
                put_varint(out, *start);
                put_varint(out, *len);
            }
            SysOp::PurgeRegion { start, len } => {
                out.push(T_PURGE);
                put_varint(out, *start);
                put_varint(out, *len);
            }
            SysOp::RemapGather {
                target,
                elem_size,
                pool,
                index_region,
                index_bytes,
                out: o,
            } => {
                out.push(T_GATHER);
                put_varint(out, target.0);
                put_varint(out, target.1);
                put_varint(out, *elem_size);
                put_varint(out, u64::from(*pool));
                put_varint(out, index_region.0);
                put_varint(out, index_region.1);
                put_varint(out, *index_bytes);
                put_opt_range(out, *o);
            }
            SysOp::RemapGatherInterleaved {
                target,
                elem_size,
                pool,
                index_region,
                index_bytes,
                partner,
                out: o,
            } => {
                out.push(T_GATHER_INTL);
                put_varint(out, target.0);
                put_varint(out, target.1);
                put_varint(out, *elem_size);
                put_varint(out, u64::from(*pool));
                put_varint(out, index_region.0);
                put_varint(out, index_region.1);
                put_varint(out, *index_bytes);
                put_varint(out, *partner);
                put_opt_range(out, *o);
            }
            SysOp::RemapStrided {
                base,
                object_size,
                stride,
                count,
                alias_align,
                out: o,
            } => {
                out.push(T_STRIDED);
                put_varint(out, *base);
                put_varint(out, *object_size);
                put_varint(out, *stride);
                put_varint(out, *count);
                put_varint(out, *alias_align);
                put_opt_range(out, *o);
            }
            SysOp::RetargetStrided {
                grant,
                new_base,
                object_size,
                stride,
                count,
                ok,
            } => {
                out.push(T_RETARGET);
                put_varint(out, u64::from(*grant));
                put_varint(out, *new_base);
                put_varint(out, *object_size);
                put_varint(out, *stride);
                put_varint(out, *count);
                out.push(u8::from(*ok));
            }
            SysOp::Recolor {
                target,
                colors,
                out: o,
            } => {
                out.push(T_RECOLOR);
                put_varint(out, target.0);
                put_varint(out, target.1);
                put_varint(out, colors.len() as u64);
                for &c in colors.iter() {
                    put_varint(out, c);
                }
                put_opt_range(out, *o);
            }
            SysOp::Superpage { target, out: o } => {
                out.push(T_SUPERPAGE);
                put_varint(out, target.0);
                put_varint(out, target.1);
                put_opt_range(out, *o);
            }
            SysOp::Spawn { pid } => {
                out.push(T_SPAWN);
                put_varint(out, u64::from(*pid));
            }
            SysOp::Switch { pid, ok } => {
                out.push(T_SWITCH);
                put_varint(out, u64::from(*pid));
                out.push(u8::from(*ok));
            }
            SysOp::Share {
                grant,
                with,
                out: o,
            } => {
                out.push(T_SHARE);
                put_varint(out, u64::from(*grant));
                put_varint(out, u64::from(*with));
                put_opt_range(out, *o);
            }
            SysOp::Release { grant, ok } => {
                out.push(T_RELEASE);
                put_varint(out, u64::from(*grant));
                out.push(u8::from(*ok));
            }
            SysOp::ResetStats { snapshot } => {
                out.push(T_RESET);
                put_varint(out, u64::from(*snapshot));
            }
            SysOp::EnableAutoPromotion { threshold } => {
                out.push(T_PROMO);
                put_varint(out, *threshold);
            }
        },
    }
}

fn decode_op(b: &[u8], pos: &mut usize, prev: &mut u64) -> Result<Op, TraceError> {
    let tag = get_u8(b, pos)?;
    let op = match tag {
        T_LOAD | T_STORE => {
            let d = unzigzag(get_varint(b, pos)?);
            let v = prev.wrapping_add(d as u64);
            *prev = v;
            if tag == T_LOAD {
                Op::Load(v)
            } else {
                Op::Store(v)
            }
        }
        T_COMPUTE => Op::Compute(get_varint(b, pos)?),
        T_PATTERN => {
            let reps = get_varint(b, pos)?;
            let n = get_varint(b, pos)? as usize;
            if n == 0 || n > MAX_PERIOD {
                return Err(TraceError::TrailingData);
            }
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                let kind = match get_u8(b, pos)? {
                    0 => SlotKind::Load,
                    1 => SlotKind::Store,
                    2 => SlotKind::Compute,
                    _ => return Err(TraceError::TrailingData),
                };
                let d = unzigzag(get_varint(b, pos)?);
                let base = prev.wrapping_add(d as u64);
                let stride = unzigzag(get_varint(b, pos)?);
                if kind != SlotKind::Compute {
                    *prev = base;
                }
                slots.push(Slot { kind, base, stride });
            }
            Op::Pattern(Box::new(PatternOp {
                reps,
                slots: slots.into_boxed_slice(),
            }))
        }
        T_PROGRAM_STREAM => Op::Sys(Box::new(SysOp::ProgramStream {
            v: get_varint(b, pos)?,
            stride: unzigzag(get_varint(b, pos)?),
        })),
        T_ALLOC => Op::Sys(Box::new(SysOp::Alloc {
            bytes: get_varint(b, pos)?,
            align: get_varint(b, pos)?,
            out: get_opt_range(b, pos)?,
        })),
        T_ALLOC_COLORED => {
            let bytes = get_varint(b, pos)?;
            let align = get_varint(b, pos)?;
            let n = get_varint(b, pos)? as usize;
            if n > b.len() {
                return Err(TraceError::Truncated);
            }
            let mut colors = Vec::with_capacity(n);
            for _ in 0..n {
                colors.push(get_varint(b, pos)?);
            }
            Op::Sys(Box::new(SysOp::AllocColored {
                bytes,
                align,
                colors: colors.into_boxed_slice(),
                out: get_opt_range(b, pos)?,
            }))
        }
        T_FLUSH => Op::Sys(Box::new(SysOp::FlushRegion {
            start: get_varint(b, pos)?,
            len: get_varint(b, pos)?,
        })),
        T_PURGE => Op::Sys(Box::new(SysOp::PurgeRegion {
            start: get_varint(b, pos)?,
            len: get_varint(b, pos)?,
        })),
        T_GATHER => Op::Sys(Box::new(SysOp::RemapGather {
            target: (get_varint(b, pos)?, get_varint(b, pos)?),
            elem_size: get_varint(b, pos)?,
            pool: get_varint(b, pos)? as u32,
            index_region: (get_varint(b, pos)?, get_varint(b, pos)?),
            index_bytes: get_varint(b, pos)?,
            out: get_opt_range(b, pos)?,
        })),
        T_GATHER_INTL => Op::Sys(Box::new(SysOp::RemapGatherInterleaved {
            target: (get_varint(b, pos)?, get_varint(b, pos)?),
            elem_size: get_varint(b, pos)?,
            pool: get_varint(b, pos)? as u32,
            index_region: (get_varint(b, pos)?, get_varint(b, pos)?),
            index_bytes: get_varint(b, pos)?,
            partner: get_varint(b, pos)?,
            out: get_opt_range(b, pos)?,
        })),
        T_STRIDED => Op::Sys(Box::new(SysOp::RemapStrided {
            base: get_varint(b, pos)?,
            object_size: get_varint(b, pos)?,
            stride: get_varint(b, pos)?,
            count: get_varint(b, pos)?,
            alias_align: get_varint(b, pos)?,
            out: get_opt_range(b, pos)?,
        })),
        T_RETARGET => Op::Sys(Box::new(SysOp::RetargetStrided {
            grant: get_varint(b, pos)? as u32,
            new_base: get_varint(b, pos)?,
            object_size: get_varint(b, pos)?,
            stride: get_varint(b, pos)?,
            count: get_varint(b, pos)?,
            ok: get_u8(b, pos)? != 0,
        })),
        T_RECOLOR => {
            let target = (get_varint(b, pos)?, get_varint(b, pos)?);
            let n = get_varint(b, pos)? as usize;
            if n > b.len() {
                return Err(TraceError::Truncated);
            }
            let mut colors = Vec::with_capacity(n);
            for _ in 0..n {
                colors.push(get_varint(b, pos)?);
            }
            Op::Sys(Box::new(SysOp::Recolor {
                target,
                colors: colors.into_boxed_slice(),
                out: get_opt_range(b, pos)?,
            }))
        }
        T_SUPERPAGE => Op::Sys(Box::new(SysOp::Superpage {
            target: (get_varint(b, pos)?, get_varint(b, pos)?),
            out: get_opt_range(b, pos)?,
        })),
        T_SPAWN => Op::Sys(Box::new(SysOp::Spawn {
            pid: get_varint(b, pos)? as u32,
        })),
        T_SWITCH => Op::Sys(Box::new(SysOp::Switch {
            pid: get_varint(b, pos)? as u32,
            ok: get_u8(b, pos)? != 0,
        })),
        T_SHARE => Op::Sys(Box::new(SysOp::Share {
            grant: get_varint(b, pos)? as u32,
            with: get_varint(b, pos)? as u32,
            out: get_opt_range(b, pos)?,
        })),
        T_RELEASE => Op::Sys(Box::new(SysOp::Release {
            grant: get_varint(b, pos)? as u32,
            ok: get_u8(b, pos)? != 0,
        })),
        T_RESET => Op::Sys(Box::new(SysOp::ResetStats {
            snapshot: get_varint(b, pos)? as u32,
        })),
        T_PROMO => Op::Sys(Box::new(SysOp::EnableAutoPromotion {
            threshold: get_varint(b, pos)?,
        })),
        _ => return Err(TraceError::TrailingData),
    };
    Ok(op)
}

// ---------------------------------------------------------------------
// Replayer
// ---------------------------------------------------------------------

/// Why a replay could not complete; callers fall back to ordinary
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The encoded capture could not be decoded.
    Decode(TraceError),
    /// Re-execution disagreed with the recorded outcome (the capture
    /// was taken under a configuration whose kernel decisions differ).
    Diverged {
        /// Folded-op index of the disagreement.
        at: usize,
        /// What disagreed.
        what: String,
    },
    /// The configuration or capture cannot be replayed at all.
    Unreplayable(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Decode(e) => write!(f, "replay capture decode: {e}"),
            ReplayError::Diverged { at, what } => {
                write!(f, "replay diverged from capture at op {at}: {what}")
            }
            ReplayError::Unreplayable(why) => write!(f, "capture not replayable: {why}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        ReplayError::Decode(e)
    }
}

/// Whether a configuration's runs can be replayed from a capture at
/// all. Fault schedules are the documented fallback-to-execute case:
/// their RNG draws are tied to execution sites the evaluator does not
/// visit in the same order. Hybrid-tier machines are the other: tier
/// state (tags, fill buffer, wear) evolves with the full access stream,
/// which the batched evaluator does not walk in execution order.
pub fn replayable(cfg: &SystemConfig) -> bool {
    cfg.faults.is_none() && cfg.tier.policy == impulse_types::TierPolicy::None
}

/// Replay evaluation statistics (host-side, for telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Demand ops evaluated on the batched fast path.
    pub fast_ops: u64,
    /// Demand ops that fell back to the full simulation path.
    pub fallback_ops: u64,
    /// Whether evaluation fast-forwarded from an embedded snapshot.
    pub fast_forwarded: bool,
}

/// Number of leading accesses of an affine walk `a, a+stride, …` that
/// stay inside the aligned `window`-byte block containing `a`, capped
/// at `cap`. `window` is a power of two; a zero stride never leaves the
/// block. Walks by comparison instead of dividing — strides are usually
/// either tiny (several accesses per block, a couple of iterations) or
/// larger than the block (one iteration), and a division would dominate
/// the per-run cost.
#[inline]
fn run_len(a: u64, stride: i64, window: u64, cap: u64) -> u64 {
    if stride == 0 {
        return cap;
    }
    let astride = stride.unsigned_abs();
    if astride.saturating_mul(4) >= window {
        // At most four accesses fit in the block: compare-walk.
        let block = a & !(window - 1);
        let mut run = 1u64;
        let mut next = a.wrapping_add_signed(stride);
        while run < cap && next & !(window - 1) == block {
            run += 1;
            next = next.wrapping_add_signed(stride);
        }
        return run;
    }
    let off = a & (window - 1);
    let d = if stride > 0 {
        (window - 1 - off) / astride
    } else {
        off / astride
    };
    d.saturating_add(1).min(cap)
}

struct Replayer {
    /// vpage → physical page base (pure translation cache).
    xlat: Box<[(u64, u64)]>,
    /// vpage → TLB generation at the last verified architectural hit.
    tlbm: Box<[(u64, u64)]>,
    pend: ReplayPending,
    t_l1_hit: u64,
    /// The L1-hit fast path is only exact when an L1 hit can never spill
    /// into the overlapped-miss window (always true for sane timings).
    fast_loads: bool,
    /// L1 line size in bytes (a power of two).
    l1_line: u64,
    /// Whether whole pattern repetitions may be charged in bulk. Exact
    /// only for a direct-mapped L1 (no recency state to interleave) with
    /// the fast load path enabled.
    batch: bool,
    promote: bool,
    grants: Vec<Option<RemapGrant>>,
    pids: Vec<Pid>,
    fast_ops: u64,
    fallback_ops: u64,
}

impl Replayer {
    fn new(m: &Machine, cfg: &SystemConfig) -> Self {
        Self {
            xlat: vec![(u64::MAX, 0); XLAT_SLOTS].into_boxed_slice(),
            tlbm: vec![(u64::MAX, u64::MAX); TLB_SLOTS].into_boxed_slice(),
            pend: ReplayPending::default(),
            t_l1_hit: cfg.t_l1_hit,
            fast_loads: cfg.mshr <= 1 || cfg.t_l1_hit <= cfg.t_l2_hit,
            l1_line: cfg.l1.line,
            batch: (cfg.mshr <= 1 || cfg.t_l1_hit <= cfg.t_l2_hit) && cfg.l1.ways == 1,
            promote: false,
            grants: Vec::new(),
            pids: vec![m.kernel().current()],
            fast_ops: 0,
            fallback_ops: 0,
        }
    }

    #[inline]
    fn clear_memos(&mut self) {
        self.xlat.fill((u64::MAX, 0));
        self.tlbm.fill((u64::MAX, u64::MAX));
    }

    /// Pure translation through the replay-side memo.
    #[inline]
    fn translate(&mut self, m: &Machine, v: u64, vpage: u64) -> PAddr {
        let slot = (vpage as usize) & (XLAT_SLOTS - 1);
        let (tag, base) = self.xlat[slot];
        if tag == vpage {
            return PAddr::new(base + (v & (PAGE_SIZE - 1)));
        }
        let p = m.translate(VAddr::new(v));
        self.xlat[slot] = (vpage, p.page_base().raw());
        p
    }

    #[inline]
    fn fallback_load(&mut self, m: &mut Machine, v: VAddr) {
        self.fallback_ops += 1;
        if self.promote {
            let before = m.memory().stats().tlb_penalties;
            m.load(v);
            if m.memory().stats().tlb_penalties != before {
                // An online promotion may have remapped pages under the
                // translation memo.
                self.clear_memos();
            }
        } else {
            m.load(v);
        }
    }

    /// One demand load: the exact effect set of `Machine::load` for the
    /// TLB-hit + L1-hit case with order-insensitive statistics deferred
    /// into `pend`; anything else re-executes the real path.
    #[inline]
    fn load(&mut self, m: &mut Machine, v: u64) {
        if !self.fast_loads {
            self.fallback_load(m, VAddr::new(v));
            return;
        }
        m.replay_mshr_retire();
        let vpage = v >> PAGE_SHIFT;
        let va = VAddr::new(v);
        let ts = (vpage as usize) & (TLB_SLOTS - 1);
        if self.tlbm[ts] == (vpage, m.memory().tlb().generation()) {
            let p = self.translate(m, v, vpage);
            if let Some(pf) = m.ms_mut().l1_mut().try_demand_hit(va, p, AccessKind::Load) {
                self.pend.load_hits += 1;
                self.pend.prefetch_useful += u64::from(pf);
                self.pend.tlb_memo_hits += 1;
                m.replay_advance(self.t_l1_hit, 1);
                self.fast_ops += 1;
                return;
            }
            self.fallback_load(m, va);
            return;
        }
        // Cold memo: probe both structures side-effect-free before
        // committing, so a fallback re-executes untainted. The TLB peek
        // comes first — a TLB miss means a fallback anyway, and skipping
        // the translation avoids a wasted page-table walk.
        if m.memory().tlb().peek(vpage) {
            let p = self.translate(m, v, vpage);
            if m.memory().l1().probe(va, p) {
                let hit = m.ms_mut().tlb_mut().lookup(vpage);
                debug_assert!(hit, "peek promised an entry");
                self.tlbm[ts] = (vpage, m.memory().tlb().generation());
                let pf = m
                    .ms_mut()
                    .l1_mut()
                    .try_demand_hit(va, p, AccessKind::Load)
                    .expect("probe promised a line");
                self.pend.load_hits += 1;
                self.pend.prefetch_useful += u64::from(pf);
                m.replay_advance(self.t_l1_hit, 1);
                self.fast_ops += 1;
                return;
            }
        }
        self.fallback_load(m, va);
    }

    /// One demand store, mirroring `Machine::store`'s hit case.
    #[inline]
    fn store(&mut self, m: &mut Machine, v: u64) {
        let vpage = v >> PAGE_SHIFT;
        let va = VAddr::new(v);
        let ts = (vpage as usize) & (TLB_SLOTS - 1);
        let warm = self.tlbm[ts] == (vpage, m.memory().tlb().generation());
        if !warm && !m.memory().tlb().peek(vpage) {
            self.fallback_ops += 1;
            m.store(va);
            return;
        }
        let p = self.translate(m, v, vpage);
        if !warm {
            if m.memory().l1().probe(va, p) {
                let hit = m.ms_mut().tlb_mut().lookup(vpage);
                debug_assert!(hit, "peek promised an entry");
                self.tlbm[ts] = (vpage, m.memory().tlb().generation());
            } else {
                self.fallback_ops += 1;
                m.store(va);
                return;
            }
        }
        // TLB verified (memoized or just looked up). Stores invalidate
        // any stream tracking the line before the L1 sees them.
        m.ms_mut().streams_invalidate(p);
        if let Some(pf) = m.ms_mut().l1_mut().try_demand_hit(va, p, AccessKind::Store) {
            self.pend.store_hits += 1;
            self.pend.prefetch_useful += u64::from(pf);
            if warm {
                self.pend.tlb_memo_hits += 1;
            }
            m.replay_advance(self.t_l1_hit, 1);
            self.fast_ops += 1;
            return;
        }
        // L1 store miss (write-around bypass or allocate): fall back.
        // Nothing was counted above (the miss probe is zero-mutation and
        // the stream invalidate is idempotent), so the real store's own
        // TLB lookup is the single count this access gets.
        self.fallback_ops += 1;
        m.store(va);
    }

    /// One repetition of a folded pattern through the exact per-op path.
    #[inline]
    fn pattern_rep(&mut self, m: &mut Machine, slots: &[Slot], rep: u64) {
        for s in slots {
            match s.kind {
                SlotKind::Load => {
                    let a = s
                        .base
                        .wrapping_add_signed(s.stride.wrapping_mul(rep as i64));
                    self.load(m, a);
                }
                SlotKind::Store => {
                    let a = s
                        .base
                        .wrapping_add_signed(s.stride.wrapping_mul(rep as i64));
                    self.store(m, a);
                }
                SlotKind::Compute => m.replay_advance(s.base, s.base),
            }
        }
    }

    /// A folded pattern: repetitions whose every access is a verified
    /// TLB-present + L1-resident hit are charged in bulk (one clock
    /// advance, line-granular cache mutations, deferred counters); the
    /// first repetition containing a miss runs through the exact per-op
    /// path, then batching resumes.
    ///
    /// Bulk charging is exact because an all-hit repetition performs no
    /// insertions or evictions anywhere: residency is stable across the
    /// span, the L1 is direct-mapped (`batch` requires it) so there is
    /// no recency order to preserve, prefetched-bit clears and dirty
    /// bits are idempotent, and every deferred counter is
    /// order-insensitive.
    fn pattern(&mut self, m: &mut Machine, p: &PatternOp) {
        let slots = &p.slots;
        if !self.batch {
            for rep in 0..p.reps {
                self.pattern_rep(m, slots, rep);
            }
            return;
        }
        let mut rep = 0u64;
        // Hysteresis: a pattern whose every repetition misses (a cold
        // streaming walk) would pay a wasted verify probe per rep —
        // after enough consecutive empty spans, stop trying for the
        // rest of this pattern instance and let the per-op path run.
        let mut dry = 0u32;
        while rep < p.reps {
            // Bulk charging skips the per-load MSHR retire, which is
            // only exact while the overlapped-miss window is empty.
            if dry < 8 && m.replay_mshr_idle() {
                let n = self.clean_reps(m, slots, rep, p.reps - rep);
                if n > 0 {
                    self.commit_reps(m, slots, rep, n);
                    rep += n;
                    dry = 0;
                } else {
                    dry += 1;
                }
            }
            if rep < p.reps {
                self.pattern_rep(m, slots, rep);
                rep += 1;
            }
        }
    }

    /// Counts how many whole repetitions starting at `rep` touch only
    /// TLB-present pages and L1-resident lines. Pure: only the
    /// replay-side memos are warmed. Probes stay valid across the span
    /// because hits never insert or evict, so each slot's clean prefix
    /// can be measured independently (line- and page-granular, not
    /// per-access) and the span is their minimum.
    fn clean_reps(&mut self, m: &Machine, slots: &[Slot], rep: u64, max: u64) -> u64 {
        let gen = m.memory().tlb().generation();
        let mut n = max;
        for s in slots {
            if s.kind == SlotKind::Compute {
                continue;
            }
            let mut k = 0u64;
            'slot: while k < n {
                let a = s
                    .base
                    .wrapping_add_signed(s.stride.wrapping_mul((rep + k) as i64));
                let vpage = a >> PAGE_SHIFT;
                let ts = (vpage as usize) & (TLB_SLOTS - 1);
                if self.tlbm[ts] != (vpage, gen) && !m.memory().tlb().peek(vpage) {
                    n = k;
                    break 'slot;
                }
                let page_end = k + run_len(a, s.stride, PAGE_SIZE, n - k);
                while k < page_end {
                    let a = s
                        .base
                        .wrapping_add_signed(s.stride.wrapping_mul((rep + k) as i64));
                    let p = self.translate(m, a, vpage);
                    if !m.memory().l1().probe(VAddr::new(a), p) {
                        n = k;
                        break 'slot;
                    }
                    k += run_len(a, s.stride, self.l1_line, page_end - k);
                }
            }
            if n == 0 {
                return 0;
            }
        }
        n
    }

    /// Charges `n` verified all-hit repetitions starting at `rep`.
    /// Slot-major on purpose: within an all-hit span nothing inserts or
    /// evicts, so the only order-sensitive state is the L1 recency
    /// stamp — reproduced exactly by computing each line's last-access
    /// tick analytically (access `k` of memory-slot ordinal `q` gets
    /// tick `tick0 + k*S + q + 1` under rep-major order) and committing
    /// it through [`Cache::demand_hit_stamped`]'s monotone-max stamp.
    /// Everything else (prefetched-bit clears, dirty bits, stream
    /// invalidation, NRU referenced bits) is idempotent, and all
    /// counters are deferred order-insensitively into `pend`.
    fn commit_reps(&mut self, m: &mut Machine, slots: &[Slot], rep: u64, n: u64) {
        let mem_slots = slots.iter().filter(|s| s.kind != SlotKind::Compute).count() as u64;
        let tick0 = m.memory().l1().tick();
        let gen = m.memory().tlb().generation();
        let mut cycles = 0u64;
        let mut instr = 0u64;
        let mut q = 0u64;
        for s in slots {
            if s.kind == SlotKind::Compute {
                cycles += s.base * n;
                instr += s.base * n;
                continue;
            }
            let is_load = s.kind == SlotKind::Load;
            let kind = if is_load {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            cycles += self.t_l1_hit * n;
            instr += n;
            self.fast_ops += n;
            if is_load {
                self.pend.load_hits += n;
            } else {
                self.pend.store_hits += n;
            }
            let mut k = 0u64;
            while k < n {
                let a = s
                    .base
                    .wrapping_add_signed(s.stride.wrapping_mul((rep + k) as i64));
                let vpage = a >> PAGE_SHIFT;
                let page_run = run_len(a, s.stride, PAGE_SIZE, n - k);
                let ts = (vpage as usize) & (TLB_SLOTS - 1);
                if self.tlbm[ts] == (vpage, gen) {
                    self.pend.tlb_memo_hits += page_run;
                } else {
                    // First touch of a memo-cold page: one architectural
                    // lookup (counts itself), exactly as per-op would;
                    // the run's remaining accesses are memo hits.
                    let hit = m.ms_mut().tlb_mut().lookup(vpage);
                    debug_assert!(hit, "clean_reps verified presence");
                    self.tlbm[ts] = (vpage, gen);
                    self.pend.tlb_memo_hits += page_run - 1;
                }
                let page_end = k + page_run;
                while k < page_end {
                    let a = s
                        .base
                        .wrapping_add_signed(s.stride.wrapping_mul((rep + k) as i64));
                    let line_run = run_len(a, s.stride, self.l1_line, page_end - k);
                    let stamp = tick0 + (k + line_run - 1) * mem_slots + q + 1;
                    let p = self.translate(m, a, vpage);
                    if !is_load {
                        m.ms_mut().streams_invalidate(p);
                    }
                    let pf = m
                        .ms_mut()
                        .l1_mut()
                        .demand_hit_stamped(VAddr::new(a), p, kind, stamp)
                        .expect("clean_reps verified a resident line");
                    self.pend.prefetch_useful += u64::from(pf);
                    k += line_run;
                }
            }
            q += 1;
        }
        m.ms_mut().l1_mut().advance_tick(mem_slots * n);
        m.replay_advance(cycles, instr);
    }

    fn flush_pending(&mut self, m: &mut Machine) {
        m.ms_mut().apply_replay_pending(&self.pend);
        self.pend = ReplayPending::default();
    }

    fn grant(&mut self, at: usize, ordinal: u32) -> Result<&mut RemapGrant, ReplayError> {
        self.grants
            .get_mut(ordinal as usize)
            .and_then(Option::as_mut)
            .ok_or_else(|| ReplayError::Diverged {
                at,
                what: format!("grant ordinal {ordinal} unavailable"),
            })
    }

    fn check_out<T>(
        at: usize,
        what: &str,
        got: &Result<T, impulse_os::OsError>,
        want: Option<(u64, u64)>,
        range_of: impl Fn(&T) -> (u64, u64),
    ) -> Result<(), ReplayError> {
        let got_r = got.as_ref().ok().map(range_of);
        if got_r != want {
            return Err(ReplayError::Diverged {
                at,
                what: format!("{what}: recorded {want:?}, replay produced {got_r:?}"),
            });
        }
        Ok(())
    }
}

/// Replays a capture into `m` (a freshly built machine under `cfg`).
/// On success the machine's statistics, clocks, and hierarchy state are
/// byte-identical to the recorded execution having run directly —
/// `Machine::report` then yields the same report.
///
/// When `cfg`'s fingerprint matches the capture's and the stream allows
/// it, evaluation fast-forwards from the embedded post-`reset_stats`
/// snapshot instead of re-running warm-up.
///
/// # Errors
///
/// Returns [`ReplayError`] if the configuration is unreplayable (fault
/// schedules), a snapshot is corrupt, or re-executed kernel decisions
/// diverge from the recorded outcomes (e.g. replaying under a
/// configuration with different allocation behavior) — callers should
/// fall back to direct execution.
pub fn replay_into(
    m: &mut Machine,
    cfg: &SystemConfig,
    cap: &ReplayCapture,
) -> Result<ReplayOutcome, ReplayError> {
    if !replayable(cfg) {
        return Err(ReplayError::Unreplayable(
            "configuration carries fault schedules".into(),
        ));
    }
    let mut r = Replayer::new(m, cfg);
    let mut start = 0usize;
    let mut fast_forwarded = false;

    // Fast-forward: resume from the last embedded epoch snapshot when
    // the configuration is the recording one and no later op reaches
    // back to pre-snapshot grants or processes.
    if cap.fingerprint == Machine::config_fingerprint(cfg) {
        if let Some((idx, snap)) = fast_forward_point(cap) {
            match Machine::restore(cfg, snap) {
                Ok(restored) => {
                    *m = restored;
                    // Ordinals created before the snapshot stay
                    // unavailable; later ops were checked not to use
                    // them.
                    let before = grants_created(&cap.ops[..=idx]);
                    r.grants = vec![None; before];
                    r.pids = vec![m.kernel().current()];
                    start = idx + 1;
                    fast_forwarded = true;
                }
                Err(e) => {
                    return Err(ReplayError::Unreplayable(format!(
                        "embedded snapshot unusable: {e}"
                    )))
                }
            }
        }
    }

    for (i, op) in cap.ops[start..].iter().enumerate() {
        let at = start + i;
        match op {
            Op::Load(v) => r.load(m, *v),
            Op::Store(v) => r.store(m, *v),
            Op::Compute(n) => m.replay_advance(*n, *n),
            Op::Pattern(p) => r.pattern(m, p),
            Op::Sys(sys) => match &**sys {
                SysOp::ProgramStream { v, stride } => m.program_stream(VAddr::new(*v), *stride),
                SysOp::Alloc { bytes, align, out } => {
                    r.clear_memos();
                    let res = m.alloc_region(*bytes, *align);
                    Replayer::check_out(at, "alloc", &res, *out, |g| (g.start().raw(), g.len()))?;
                }
                SysOp::AllocColored {
                    bytes,
                    align,
                    colors,
                    out,
                } => {
                    r.clear_memos();
                    let res = m.alloc_region_colored(*bytes, *align, colors);
                    Replayer::check_out(at, "alloc_colored", &res, *out, |g| {
                        (g.start().raw(), g.len())
                    })?;
                }
                SysOp::FlushRegion { start, len } => {
                    m.flush_region(VRange::new(VAddr::new(*start), *len));
                }
                SysOp::PurgeRegion { start, len } => {
                    m.purge_region(VRange::new(VAddr::new(*start), *len));
                }
                SysOp::RemapGather {
                    target,
                    elem_size,
                    pool,
                    index_region,
                    index_bytes,
                    out,
                } => {
                    r.clear_memos();
                    let indices = cap
                        .pools
                        .get(*pool as usize)
                        .ok_or(ReplayError::Decode(TraceError::Truncated))?
                        .clone();
                    let res = m.sys_remap_gather(
                        VRange::new(VAddr::new(target.0), target.1),
                        *elem_size,
                        indices,
                        VRange::new(VAddr::new(index_region.0), index_region.1),
                        *index_bytes,
                    );
                    Replayer::check_out(at, "remap_gather", &res, *out, |g| {
                        (g.alias.start().raw(), g.alias.len())
                    })?;
                    if let Ok(g) = res {
                        r.grants.push(Some(g));
                    }
                }
                SysOp::RemapGatherInterleaved {
                    target,
                    elem_size,
                    pool,
                    index_region,
                    index_bytes,
                    partner,
                    out,
                } => {
                    r.clear_memos();
                    let indices = cap
                        .pools
                        .get(*pool as usize)
                        .ok_or(ReplayError::Decode(TraceError::Truncated))?
                        .clone();
                    let res = m.sys_remap_gather_interleaved(
                        VRange::new(VAddr::new(target.0), target.1),
                        *elem_size,
                        indices,
                        VRange::new(VAddr::new(index_region.0), index_region.1),
                        *index_bytes,
                        VAddr::new(*partner),
                    );
                    Replayer::check_out(at, "remap_gather_interleaved", &res, *out, |g| {
                        (g.alias.start().raw(), g.alias.len())
                    })?;
                    if let Ok(g) = res {
                        r.grants.push(Some(g));
                    }
                }
                SysOp::RemapStrided {
                    base,
                    object_size,
                    stride,
                    count,
                    alias_align,
                    out,
                } => {
                    r.clear_memos();
                    let res = m.sys_remap_strided(
                        VAddr::new(*base),
                        *object_size,
                        *stride,
                        *count,
                        *alias_align,
                    );
                    Replayer::check_out(at, "remap_strided", &res, *out, |g| {
                        (g.alias.start().raw(), g.alias.len())
                    })?;
                    if let Ok(g) = res {
                        r.grants.push(Some(g));
                    }
                }
                SysOp::RetargetStrided {
                    grant,
                    new_base,
                    object_size,
                    stride,
                    count,
                    ok,
                } => {
                    r.clear_memos();
                    let g = r.grant(at, *grant)?;
                    // Work on a clone so the borrow on `r` ends before the
                    // machine call; write the updated grant back after.
                    let mut g2 = g.clone();
                    let res = m.sys_retarget_strided(
                        &mut g2,
                        VAddr::new(*new_base),
                        *object_size,
                        *stride,
                        *count,
                    );
                    r.grants[*grant as usize] = Some(g2);
                    if res.is_ok() != *ok {
                        return Err(ReplayError::Diverged {
                            at,
                            what: "retarget_strided outcome".into(),
                        });
                    }
                }
                SysOp::Recolor {
                    target,
                    colors,
                    out,
                } => {
                    r.clear_memos();
                    let res = m.sys_recolor(VRange::new(VAddr::new(target.0), target.1), colors);
                    Replayer::check_out(at, "recolor", &res, *out, |g| {
                        (g.alias.start().raw(), g.alias.len())
                    })?;
                    if let Ok(g) = res {
                        r.grants.push(Some(g));
                    }
                }
                SysOp::Superpage { target, out } => {
                    r.clear_memos();
                    let res = m.sys_superpage(VRange::new(VAddr::new(target.0), target.1));
                    Replayer::check_out(at, "superpage", &res, *out, |g| {
                        (g.alias.start().raw(), g.alias.len())
                    })?;
                    if let Ok(g) = res {
                        r.grants.push(Some(g));
                    }
                }
                SysOp::Spawn { pid } => {
                    r.clear_memos();
                    let p = m.sys_spawn();
                    if p.raw() != *pid {
                        return Err(ReplayError::Diverged {
                            at,
                            what: format!("spawn returned pid {}, recorded {pid}", p.raw()),
                        });
                    }
                    r.pids.push(p);
                }
                SysOp::Switch { pid, ok } => {
                    r.clear_memos();
                    let target =
                        *r.pids
                            .get(*pid as usize)
                            .ok_or_else(|| ReplayError::Diverged {
                                at,
                                what: format!("pid ordinal {pid} unavailable"),
                            })?;
                    let res = m.sys_switch(target);
                    if res.is_ok() != *ok {
                        return Err(ReplayError::Diverged {
                            at,
                            what: "switch outcome".into(),
                        });
                    }
                }
                SysOp::Share { grant, with, out } => {
                    r.clear_memos();
                    let with =
                        *r.pids
                            .get(*with as usize)
                            .ok_or_else(|| ReplayError::Diverged {
                                at,
                                what: format!("pid ordinal {with} unavailable"),
                            })?;
                    let g = r.grant(at, *grant)?.clone();
                    let res = m.sys_share(&g, with);
                    Replayer::check_out(at, "share", &res, *out, |a| (a.start().raw(), a.len()))?;
                }
                SysOp::Release { grant, ok } => {
                    r.clear_memos();
                    let g = r.grant(at, *grant)?.clone();
                    let res = m.sys_release(&g);
                    if res.is_ok() != *ok {
                        return Err(ReplayError::Diverged {
                            at,
                            what: "release outcome".into(),
                        });
                    }
                }
                SysOp::ResetStats { .. } => {
                    r.flush_pending(m);
                    m.reset_stats();
                    r.clear_memos();
                }
                SysOp::EnableAutoPromotion { threshold } => {
                    m.enable_auto_promotion(*threshold);
                    r.promote = true;
                }
            },
        }
    }
    r.flush_pending(m);
    Ok(ReplayOutcome {
        fast_ops: r.fast_ops,
        fallback_ops: r.fallback_ops,
        fast_forwarded,
    })
}

/// Successful grant-creating ops in a prefix (the ordinal watermark).
fn grants_created(ops: &[Op]) -> usize {
    ops.iter()
        .filter(|op| {
            let Op::Sys(sys) = op else { return false };
            matches!(
                &**sys,
                SysOp::RemapGather { out: Some(_), .. }
                    | SysOp::RemapGatherInterleaved { out: Some(_), .. }
                    | SysOp::RemapStrided { out: Some(_), .. }
                    | SysOp::Recolor { out: Some(_), .. }
                    | SysOp::Superpage { out: Some(_), .. }
            )
        })
        .count()
}

/// Finds the last `ResetStats` with an embedded snapshot such that no
/// later op references a grant or process created before it — the
/// point evaluation may fast-forward to.
fn fast_forward_point(cap: &ReplayCapture) -> Option<(usize, &Vec<u8>)> {
    let (idx, snap_ix) = cap.ops.iter().enumerate().rev().find_map(|(i, op)| {
        if let Op::Sys(sys) = op {
            if let SysOp::ResetStats { snapshot } = &**sys {
                return (*snapshot != u32::MAX).then_some((i, *snapshot as usize));
            }
        }
        None
    })?;
    let snap = cap.snapshots.get(snap_ix)?;
    let grants_before = grants_created(&cap.ops[..=idx]) as u32;
    for op in &cap.ops[idx + 1..] {
        let Op::Sys(sys) = op else { continue };
        let blocked = match &**sys {
            SysOp::RetargetStrided { grant, .. }
            | SysOp::Share { grant, .. }
            | SysOp::Release { grant, .. } => *grant < grants_before,
            // Any pid-referencing op after the snapshot blocks the
            // fast-forward: pid values cannot be reconstructed.
            SysOp::Switch { .. } | SysOp::Spawn { .. } => true,
            _ => false,
        };
        if blocked {
            return None;
        }
        // `Share` also references a pid.
        if matches!(&**sys, SysOp::Share { .. }) {
            return None;
        }
    }
    Some((idx, snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SystemConfig {
        SystemConfig::paint_small()
    }

    /// Runs a little workload that exercises loads, stores, computes,
    /// patterns, a gather remap, flushes and a stats reset.
    fn drive(m: &mut Machine) {
        let x = m.alloc_region(64 * 1024, 8).unwrap();
        let colv = m.alloc_region(512 * 4, 4).unwrap();
        let indices = Arc::new((0..512u64).map(|i| (i * 13) % 4096).collect::<Vec<_>>());
        let g = m
            .sys_remap_gather(x, 8, indices, colv, 4)
            .expect("gather remap");
        m.reset_stats();
        // A periodic inner loop the folder should compress.
        for i in 0..256u64 {
            m.load(x.start().add(i * 8));
            m.load(g.alias.start().add(i * 8));
            m.compute(2);
        }
        // Some irregular traffic.
        for i in 0..64u64 {
            m.store(x.start().add((i * 1031) % 32768));
        }
        m.flush_region(x);
        for i in 0..64u64 {
            m.load(x.start().add(i * 8));
        }
        m.sys_release(&g).expect("release");
    }

    fn capture_of(cfg: &SystemConfig) -> ReplayCapture {
        let mut m = Machine::new(cfg);
        m.start_recording(cfg);
        drive(&mut m);
        m.take_recording()
            .expect("recording active")
            .expect("clean")
    }

    #[test]
    fn replay_reproduces_execution_bit_exactly() {
        let cfg = small();
        let mut direct = Machine::new(&cfg);
        drive(&mut direct);
        let cap = capture_of(&cfg);
        assert!(cap.raw_ops > 800, "raw ops: {}", cap.raw_ops);
        // Folding must compress the periodic section substantially.
        assert!(
            (cap.ops.len() as u64) < cap.raw_ops / 4,
            "{} folded ops for {} raw",
            cap.ops.len(),
            cap.raw_ops
        );
        let mut replayed = Machine::new(&cfg);
        let out = replay_into(&mut replayed, &cfg, &cap).expect("replay");
        assert!(out.fast_ops > 0);
        // Full state equality, to the snapshot byte.
        assert_eq!(
            replayed.snapshot(&cfg),
            direct.snapshot(&cfg),
            "replayed machine state diverged from direct execution"
        );
        let a = direct.report("x");
        let b = replayed.report("x");
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn recording_also_reproduces_bit_exactly() {
        // The recorder hooks must never perturb simulated time.
        let cfg = small();
        let mut direct = Machine::new(&cfg);
        drive(&mut direct);
        let mut recorded = Machine::new(&cfg);
        recorded.start_recording(&cfg);
        drive(&mut recorded);
        let _ = recorded.take_recording();
        assert_eq!(recorded.snapshot(&cfg), direct.snapshot(&cfg));
    }

    #[test]
    fn capture_codec_round_trips() {
        let cfg = small();
        let cap = capture_of(&cfg);
        let bytes = cap.encode();
        let back = ReplayCapture::decode(&bytes).expect("decode");
        assert_eq!(back.fingerprint, cap.fingerprint);
        assert_eq!(back.raw_ops, cap.raw_ops);
        assert_eq!(back.ops, cap.ops);
        assert_eq!(back.snapshots, cap.snapshots);
        assert_eq!(back.pools.len(), cap.pools.len());
        for (a, b) in back.pools.iter().zip(&cap.pools) {
            assert_eq!(a, b);
        }
        // Re-encode is a fixed point.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn decode_rejects_corruption_and_truncation() {
        let cfg = small();
        let bytes = capture_of(&cfg).encode();
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(matches!(
            ReplayCapture::decode(&corrupt),
            Err(TraceError::BadDigest { .. })
        ));
        assert!(ReplayCapture::decode(&bytes[..bytes.len() - 3]).is_err());
        assert!(ReplayCapture::decode(&[]).is_err());
    }

    #[test]
    fn fast_forward_resumes_from_embedded_snapshot() {
        let cfg = small();
        let cap = capture_of(&cfg);
        assert_eq!(cap.snapshots.len(), 1);
        let mut direct = Machine::new(&cfg);
        drive(&mut direct);
        let mut replayed = Machine::new(&cfg);
        let out = replay_into(&mut replayed, &cfg, &cap).expect("replay");
        // The demo workload releases a pre-reset grant after the reset,
        // so fast-forward must be declined — and the result still match.
        assert!(!out.fast_forwarded);
        assert_eq!(replayed.snapshot(&cfg), direct.snapshot(&cfg));

        // A stream with no post-reset references does fast-forward.
        let mut m = Machine::new(&cfg);
        m.start_recording(&cfg);
        let x = m.alloc_region(1 << 16, 8).unwrap();
        for i in 0..512u64 {
            m.load(x.start().add(i * 8));
        }
        m.reset_stats();
        for i in 0..512u64 {
            m.load(x.start().add(i * 8));
        }
        let cap2 = m.take_recording().unwrap().unwrap();
        let mut direct2 = Machine::new(&cfg);
        let x2 = direct2.alloc_region(1 << 16, 8).unwrap();
        for i in 0..512u64 {
            direct2.load(x2.start().add(i * 8));
        }
        direct2.reset_stats();
        for i in 0..512u64 {
            direct2.load(x2.start().add(i * 8));
        }
        let mut replayed2 = Machine::new(&cfg);
        let out2 = replay_into(&mut replayed2, &cfg, &cap2).expect("replay");
        assert!(out2.fast_forwarded, "eligible stream should fast-forward");
        assert_eq!(replayed2.snapshot(&cfg), direct2.snapshot(&cfg));
    }

    #[test]
    fn folding_compresses_affine_runs() {
        let win: Vec<(u8, u64)> = (0..96)
            .flat_map(|k| {
                [
                    (RAW_LOAD, 0x1000 + k * 8),
                    (RAW_LOAD, 0x9000 + k * 1536),
                    (RAW_COMPUTE, 2),
                ]
            })
            .collect();
        let mut ops = Vec::new();
        fold_into(&win, &mut ops);
        assert_eq!(ops.len(), 1, "{ops:?}");
        match &ops[0] {
            Op::Pattern(p) => {
                assert_eq!(p.reps, 96);
                assert_eq!(p.slots.len(), 3);
                assert_eq!(p.slots[0].stride, 8);
                assert_eq!(p.slots[1].stride, 1536);
                assert_eq!(
                    p.slots[2],
                    Slot {
                        kind: SlotKind::Compute,
                        base: 2,
                        stride: 0
                    }
                );
            }
            other => panic!("expected pattern, got {other:?}"),
        }
    }

    #[test]
    fn folding_leaves_irregular_streams_alone() {
        let win: Vec<(u8, u64)> = (0..64u64).map(|i| (RAW_LOAD, (i * 1031) % 4096)).collect();
        let mut ops = Vec::new();
        fold_into(&win, &mut ops);
        // Multiplicative scrambles still advance affinely (constant
        // stride mod 2^64 won't hold across the wrap) — whatever folds
        // must reconstruct the identical sequence.
        let mut rebuilt = Vec::new();
        for op in &ops {
            match op {
                Op::Load(v) => rebuilt.push(*v),
                Op::Pattern(p) => {
                    for rep in 0..p.reps {
                        for s in p.slots.iter() {
                            assert_eq!(s.kind, SlotKind::Load);
                            rebuilt.push(s.base.wrapping_add_signed(s.stride * rep as i64));
                        }
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let want: Vec<u64> = win.iter().map(|&(_, v)| v).collect();
        assert_eq!(rebuilt, want);
    }

    #[test]
    fn replay_refuses_faulty_configs() {
        let cfg = small();
        let cap = capture_of(&cfg);
        let mut faults = impulse_fault::FaultConfig::none();
        faults.dram_flip = impulse_fault::Trigger::Permille(5);
        let faulty = small().with_faults(faults);
        assert!(!replayable(&faulty));
        let mut m = Machine::new(&faulty);
        assert!(matches!(
            replay_into(&mut m, &faulty, &cap),
            Err(ReplayError::Unreplayable(_))
        ));
    }

    #[test]
    fn divergence_is_detected_not_mispriced() {
        let cfg = small();
        let mut cap = capture_of(&cfg);
        // Tamper with a recorded allocation outcome: replay must refuse
        // rather than silently price a different layout.
        for op in &mut cap.ops {
            if let Op::Sys(sys) = op {
                if let SysOp::Alloc {
                    out: Some((s, _)), ..
                } = &mut **sys
                {
                    *s ^= 0x1000;
                    break;
                }
            }
        }
        let mut m = Machine::new(&cfg);
        assert!(matches!(
            replay_into(&mut m, &cfg, &cap),
            Err(ReplayError::Diverged { .. })
        ));
    }
}
